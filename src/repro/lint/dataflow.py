"""Shared infrastructure for the flow-sensitive lint analyses.

PR 4's rules are line-local: each looks at one AST node.  The units,
state-machine and RNG-provenance analyses need more — values that flow
through assignments, guards that narrow what a later statement can see,
and annotations that resolve genuine ambiguity.  This module holds the
machinery those passes share:

* **Inline annotations** — ``# unit: <expr>`` declares the physical
  unit of the assignment (or function) on its line; ``# sm:
  assume(state, ...)`` pins the power states a callback can be entered
  in.  Both are comments, so they cost nothing at runtime and stay
  next to the code they describe.
* **Constant resolution** — module-level ``NAME = "literal"`` bindings
  (the power-state name constants) and literal tuples, resolved
  without importing the module.
* **Branch-aware walking helpers** — the ``TERMINATED`` sentinel and
  environment merge used by the forward passes to model early
  ``return``/``raise`` pruning.

The analyses themselves live in :mod:`repro.lint.units`,
:mod:`repro.lint.statemachine` and :mod:`repro.lint.rngprov`; they are
*tree analyses* (see :mod:`repro.lint.engine`): they run after the
per-line rules and may look across every file in the run.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, List, Optional, Sequence, Tuple, TypeVar

#: ``# unit: <unit-expression>`` — declares the unit of the value bound
#: (or returned) on this line.  The expression grammar is parsed by
#: :func:`repro.lint.units.parse_unit`.
_UNIT_ANNOTATION_RE = re.compile(r"^#\s*unit:\s*([^#]+?)\s*(?:#.*)?$")

#: ``# sm: assume(a, b)`` — entry-state assumption for a method that is
#: only ever reached from known power states (scheduled callbacks).
_SM_ASSUME_RE = re.compile(
    r"^#\s*sm:\s*assume\(\s*([a-z_][a-z0-9_]*(?:\s*,\s*[a-z_][a-z0-9_]*)*)"
    r"\s*\)")


def comment_tokens(lines: Sequence[str]) -> Dict[int, str]:
    """``{line_number: comment_text}`` for every *real* comment.

    Tokenizes rather than scanning lines, so ``# unit:`` examples inside
    docstrings and string literals (this package documents its own
    annotation language...) are never mistaken for annotations.
    """
    found: Dict[int, str] = {}
    reader = io.StringIO("\n".join(lines) + "\n").readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                found[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # a file this far into the pipeline already parsed
    return found


def unit_annotations(lines: Sequence[str]) -> Dict[int, str]:
    """``{line_number: unit_expression}`` for every ``# unit:`` comment."""
    found: Dict[int, str] = {}
    for number, text in comment_tokens(lines).items():
        match = _UNIT_ANNOTATION_RE.search(text)
        if match is not None:
            found[number] = match.group(1).strip()
    return found


def sm_assumptions(lines: Sequence[str]) -> Dict[int, Tuple[str, ...]]:
    """``{line_number: states}`` for every ``# sm: assume(...)`` comment."""
    found: Dict[int, Tuple[str, ...]] = {}
    for number, text in comment_tokens(lines).items():
        match = _SM_ASSUME_RE.search(text)
        if match is not None:
            found[number] = tuple(
                state.strip() for state in match.group(1).split(","))
    return found


def function_header_lines(node: ast.AST) -> range:
    """Source lines of a function's header (``def`` up to the body).

    Inline annotations attached to a function go on any header line, so
    multi-line signatures can carry them on the closing paren.
    """
    first = getattr(node, "lineno", 1)
    body = getattr(node, "body", None)
    last = body[0].lineno - 1 if body else first
    return range(first, max(first, last) + 1)


def module_string_constants(tree: ast.AST) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings, unmangled.

    The hardware models name their power states through module
    constants (``TX = "tx"``); the state-machine pass resolves those
    names without importing the module.
    """
    constants: Dict[str, str] = {}
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            constants[node.targets[0].id] = node.value.value
    return constants


def literal_or_none(node: ast.AST):
    """``ast.literal_eval`` that returns None instead of raising."""
    try:
        return ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError, MemoryError):
        return None


#: Sentinel environment meaning "this path cannot fall through" —
#: every statement after an unconditional return/raise/continue/break.
TERMINATED = None

_V = TypeVar("_V")


def merge_envs(branches: List[Optional[Dict[str, _V]]]
               ) -> Optional[Dict[str, _V]]:
    """Join the environments of sibling branches.

    ``TERMINATED`` branches contribute nothing.  A name keeps its value
    only when every surviving branch agrees on it; disagreement drops
    the binding (the passes treat an unbound name as "unknown", which
    can never produce a finding).
    """
    alive = [env for env in branches if env is not TERMINATED]
    if not alive:
        return TERMINATED
    merged: Dict[str, _V] = {}
    for key in alive[0]:
        value = alive[0][key]
        if all(key in env and env[key] == value for env in alive[1:]):
            merged[key] = value
    return merged


def is_terminal_stmt(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` unconditionally leaves the current block."""
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Break,
                             ast.Continue))


def walk_skipping_lambdas(node: ast.AST):
    """``ast.walk`` that does not descend into nested lambdas/defs.

    A ``sim.after(delay, lambda: self._later())`` call runs *later*:
    anything inside the lambda must not be attributed to the current
    control point.  Nested function definitions get their own walk.
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.Lambda, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue
            stack.append(child)


__all__ = [
    "TERMINATED",
    "comment_tokens",
    "function_header_lines",
    "is_terminal_stmt",
    "literal_or_none",
    "merge_envs",
    "module_string_constants",
    "sm_assumptions",
    "unit_annotations",
    "walk_skipping_lambdas",
]
