#!/usr/bin/env python3
"""Hospital-ward study: how close can two monitored patients sit?

Two patients each wear a 3-node BAN.  Within radio range the networks
share the 2.4 GHz channel: beacons and data frames of one BAN
periodically collide with the other's, the nRF2401 CRC discards the
corrupted frames, and delivery/energy suffer.  This example sweeps the
arrangement:

1. isolated wards (baseline),
2. adjacent beds, schedules cleanly interleaved (a lucky stagger),
3. adjacent beds, schedules adversarially overlapped,
4. adjacent beds, the BANs on separate nRF2401 frequency channels,

and reports delivery ratio, collision counts and per-node radio energy
— the kind of deployment question the paper's network-level simulation
exists to answer.

Run:  python examples/ward_interference.py
"""

from typing import Dict, Optional, Set, Tuple

from repro.core.report import render_table
from repro.net.multi import MultiBanScenario
from repro.net.scenario import BanScenarioConfig
from repro.phy.topology import ExplicitLinks, Topology

MEASURE_S = 20.0


def configs():
    return [
        BanScenarioConfig(mac="static", app="ecg_streaming", num_nodes=3,
                          cycle_ms=30.0, sampling_hz=205.0,
                          measure_s=MEASURE_S),
        BanScenarioConfig(mac="static", app="ecg_streaming", num_nodes=3,
                          cycle_ms=40.0, sampling_hz=150.0,
                          measure_s=MEASURE_S),
    ]


def isolated_topology() -> Topology:
    """Each BAN hears itself only (patients in different rooms)."""
    links: Set[Tuple[str, str]] = set()
    for ban in ("ban1", "ban2"):
        members = [f"{ban}.base_station"] + [f"{ban}.node{i}"
                                             for i in (1, 2, 3)]
        for a in members:
            for b in members:
                if a != b:
                    links.add((a, b))
    return ExplicitLinks(links)


def run_arrangement(label: str, stagger_ms: float,
                    topology: Optional[Topology],
                    rf_channels=None) -> Dict:
    multi = MultiBanScenario(configs(), stagger_ms=stagger_ms,
                             topology=topology, seed=4,
                             rf_channels=rf_channels)
    results = multi.run()
    sent = {name: sum(n.traffic.data_tx for n in r.nodes.values())
            for name, r in results.items()}
    delivered = {f"ban{i + 1}": ban.base_station.frames_received
                 for i, ban in enumerate(multi.bans)}
    expected = {
        "ban1": 3 * MEASURE_S / 0.030,
        "ban2": 3 * MEASURE_S / 0.040,
    }
    radio = {name: r.node(f"{name}.node1").radio_mj
             for name, r in results.items()}
    return {
        "label": label,
        "collisions": multi.collisions_detected,
        "delivery": {name: delivered[name] / expected[name]
                     for name in delivered},
        "radio": radio,
        "sent": sent,
    }


def main() -> None:
    arrangements = [
        run_arrangement("different rooms", 7.8, isolated_topology()),
        run_arrangement("adjacent, lucky stagger", 3.0, None),
        run_arrangement("adjacent, adversarial stagger", 7.8, None),
        run_arrangement("adjacent, separate RF channels", 7.8, None,
                        rf_channels=(0, 40)),
    ]
    rows = []
    for record in arrangements:
        rows.append((
            record["label"],
            record["collisions"],
            f"{100 * record['delivery']['ban1']:.1f}%",
            f"{100 * record['delivery']['ban2']:.1f}%",
            record["radio"]["ban1"],
            record["radio"]["ban2"],
        ))
    print(render_table(
        ["arrangement", "collisions", "ban1 delivery", "ban2 delivery",
         "ban1 radio (mJ)", "ban2 radio (mJ)"],
        rows,
        title=f"Two 3-node BANs, {MEASURE_S:.0f} s "
              "(30 ms vs 40 ms cycles)"))
    print(
        "\nReading: co-location is free *if* the schedules interleave "
        "cleanly — TDMA's promise.  At the adversarial phase the two "
        "failure modes split: ban1's data slots collide with ban2's "
        "traffic, so ban1 silently loses frames (CRC discards); ban2's "
        "beacons collide instead, so its nodes miss syncs, listen "
        "longer and re-acquire — delivery holds but radio energy "
        "jumps ~30%.  The last row shows the deployment remedy: "
        "RF-channel separation restores full isolation at zero "
        "protocol cost.  The simulator makes the cost of not having "
        "it measurable.")


if __name__ == "__main__":
    main()
