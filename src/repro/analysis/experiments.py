"""Reproduction of every table and figure in the paper's evaluation.

Each ``reproduce_*`` function runs the exact scenario behind one
published artefact and returns an :class:`ExperimentResult` holding,
per row: the paper's Real and Sim values and our simulator's estimate,
plus the paper-style average errors.  The benchmark harness and the CLI
are thin wrappers over these functions.

Scenario settings come straight from Section 5:

* 5-node BAN; reported figures are for the ECG node (our ``node1``);
* 60 s windows; 18-byte streaming payload; 2 ECG channels;
* Table 1: static TDMA, sampling swept (205/105/70/55 Hz -> cycles
  30/60/90/120 ms);
* Table 2: dynamic TDMA, 10 ms slots, 1-5 nodes, sampling derived so
  one 18-byte packet is sent per cycle;
* Table 3: Rpeak at the fixed 200 Hz, static cycles 30-120 ms,
  75 bpm input;
* Table 4: Rpeak, dynamic TDMA, 1-5 nodes;
* Figure 4: streaming at 30 ms vs Rpeak at 120 ms, total energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.calibration import DEFAULT_CALIBRATION, ModelCalibration
from ..core.report import NetworkEnergyResult, render_table
from ..data.paper_tables import (
    FIGURE_4_RPEAK_TOTAL_MJ,
    FIGURE_4_SAVING_FRACTION,
    FIGURE_4_STREAMING_TOTAL_MJ,
    PaperTable,
    TABLE_1,
    TABLE_2,
    TABLE_3,
    TABLE_4,
)
from ..exec import ScenarioExecutor
from ..net.scenario import BanScenarioConfig, BanScenario

#: Node whose energy the paper reports ("the ECG node").
REPORTED_NODE = "node1"


@dataclass(frozen=True)
class ExperimentRow:
    """One reproduced table row: paper values + our measurement."""

    parameter: float
    cycle_ms: float
    radio_real_mj: float
    radio_paper_sim_mj: float
    radio_ours_mj: float
    mcu_real_mj: float
    mcu_paper_sim_mj: float
    mcu_ours_mj: float

    def error_vs(self, reference: str, component: str) -> float:
        """|ours - reference| / reference.

        Args:
            reference: ``"real"`` (hardware) or ``"paper_sim"``.
            component: ``"radio"`` or ``"mcu"``.
        """
        ours = {"radio": self.radio_ours_mj,
                "mcu": self.mcu_ours_mj}[component]
        ref = {
            ("real", "radio"): self.radio_real_mj,
            ("real", "mcu"): self.mcu_real_mj,
            ("paper_sim", "radio"): self.radio_paper_sim_mj,
            ("paper_sim", "mcu"): self.mcu_paper_sim_mj,
        }[(reference, component)]
        return abs(ours - ref) / ref


@dataclass(frozen=True)
class ExperimentResult:
    """A fully reproduced table."""

    table_id: str
    caption: str
    parameter_name: str
    rows: Sequence[ExperimentRow]
    measure_s: float

    def mean_error(self, reference: str, component: str) -> float:
        """Average fractional error across rows (paper's metric)."""
        return sum(r.error_vs(reference, component) for r in self.rows) \
            / len(self.rows)

    def render(self) -> str:
        """Paper-style text table, with our column appended."""
        headers = [self.parameter_name, "Cycle (ms)",
                   "Radio real", "Radio paper-sim", "Radio ours",
                   "uC real", "uC paper-sim", "uC ours"]
        body = [
            (row.parameter, row.cycle_ms,
             row.radio_real_mj, row.radio_paper_sim_mj, row.radio_ours_mj,
             row.mcu_real_mj, row.mcu_paper_sim_mj, row.mcu_ours_mj)
            for row in self.rows
        ]
        table = render_table(headers, body, title=self.caption)
        footer = (
            f"Avg err vs real:      radio "
            f"{100 * self.mean_error('real', 'radio'):.1f}%  "
            f"uC {100 * self.mean_error('real', 'mcu'):.1f}%\n"
            f"Avg err vs paper sim: radio "
            f"{100 * self.mean_error('paper_sim', 'radio'):.1f}%  "
            f"uC {100 * self.mean_error('paper_sim', 'mcu'):.1f}%")
        return f"{table}\n{footer}"


def _run_row(config: BanScenarioConfig) -> Dict[str, float]:
    result = BanScenario(config).run()
    node = result.node(REPORTED_NODE)
    return {"radio_mj": node.radio_mj, "mcu_mj": node.mcu_mj}


def _resolve(executor: Optional[ScenarioExecutor]) -> ScenarioExecutor:
    """Default to sequential in-process execution."""
    return executor if executor is not None else ScenarioExecutor(jobs=1)


def _scale(value_mj: float, measure_s: float) -> float:
    """Scale a published 60 s figure to a shorter measurement window."""
    return value_mj * measure_s / 60.0


def _assemble(table: PaperTable, results: Sequence[NetworkEnergyResult],
              measure_s: float) -> ExperimentResult:
    """Zip simulated results against the table's published rows."""
    rows: List[ExperimentRow] = []
    for paper_row, result in zip(table.rows, results):
        node = result.node(REPORTED_NODE)
        rows.append(ExperimentRow(
            parameter=paper_row.parameter,
            cycle_ms=paper_row.cycle_ms,
            radio_real_mj=_scale(paper_row.radio_real_mj, measure_s),
            radio_paper_sim_mj=_scale(paper_row.radio_sim_mj, measure_s),
            radio_ours_mj=node.radio_mj,
            mcu_real_mj=_scale(paper_row.mcu_real_mj, measure_s),
            mcu_paper_sim_mj=_scale(paper_row.mcu_sim_mj, measure_s),
            mcu_ours_mj=node.mcu_mj,
        ))
    return ExperimentResult(table_id=table.table_id, caption=table.caption,
                            parameter_name=table.parameter_name,
                            rows=rows, measure_s=measure_s)


def _reproduce(table: PaperTable, configs: Sequence[BanScenarioConfig],
               measure_s: float,
               executor: Optional[ScenarioExecutor] = None
               ) -> ExperimentResult:
    results = _resolve(executor).run_configs(configs)
    return _assemble(table, results, measure_s)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def _table1_configs(measure_s: float, seed: int,
                    cal: ModelCalibration) -> List[BanScenarioConfig]:
    return [
        BanScenarioConfig(mac="static", app="ecg_streaming", num_nodes=5,
                          cycle_ms=row.cycle_ms, sampling_hz=row.parameter,
                          measure_s=measure_s, seed=seed, calibration=cal)
        for row in TABLE_1.rows
    ]


def _table2_configs(measure_s: float, seed: int,
                    cal: ModelCalibration) -> List[BanScenarioConfig]:
    return [
        BanScenarioConfig(mac="dynamic", app="ecg_streaming",
                          num_nodes=int(row.parameter), slot_ms=10.0,
                          measure_s=measure_s, seed=seed, calibration=cal)
        for row in TABLE_2.rows
    ]


def _table3_configs(measure_s: float, seed: int,
                    cal: ModelCalibration) -> List[BanScenarioConfig]:
    return [
        BanScenarioConfig(mac="static", app="rpeak", num_nodes=5,
                          cycle_ms=row.cycle_ms, heart_rate_bpm=75.0,
                          measure_s=measure_s, seed=seed, calibration=cal)
        for row in TABLE_3.rows
    ]


def _table4_configs(measure_s: float, seed: int,
                    cal: ModelCalibration) -> List[BanScenarioConfig]:
    return [
        BanScenarioConfig(mac="dynamic", app="rpeak",
                          num_nodes=int(row.parameter), slot_ms=10.0,
                          heart_rate_bpm=75.0,
                          measure_s=measure_s, seed=seed, calibration=cal)
        for row in TABLE_4.rows
    ]


#: table_id -> (published table, config builder).
_TABLE_SPECS = {
    "table1": (TABLE_1, _table1_configs),
    "table2": (TABLE_2, _table2_configs),
    "table3": (TABLE_3, _table3_configs),
    "table4": (TABLE_4, _table4_configs),
}


def _reproduce_one(table_id: str, measure_s: float, seed: int,
                   calibration: Optional[ModelCalibration],
                   executor: Optional[ScenarioExecutor]
                   ) -> ExperimentResult:
    cal = calibration or DEFAULT_CALIBRATION
    table, build = _TABLE_SPECS[table_id]
    return _reproduce(table, build(measure_s, seed, cal), measure_s,
                      executor)


def reproduce_table1(measure_s: float = 60.0, seed: int = 0,
                     calibration: Optional[ModelCalibration] = None,
                     executor: Optional[ScenarioExecutor] = None
                     ) -> ExperimentResult:
    """Table 1: ECG streaming, static TDMA, sampling-frequency sweep."""
    return _reproduce_one("table1", measure_s, seed, calibration, executor)


def reproduce_table2(measure_s: float = 60.0, seed: int = 0,
                     calibration: Optional[ModelCalibration] = None,
                     executor: Optional[ScenarioExecutor] = None
                     ) -> ExperimentResult:
    """Table 2: ECG streaming, dynamic TDMA, node-count sweep."""
    return _reproduce_one("table2", measure_s, seed, calibration, executor)


def reproduce_table3(measure_s: float = 60.0, seed: int = 0,
                     calibration: Optional[ModelCalibration] = None,
                     executor: Optional[ScenarioExecutor] = None
                     ) -> ExperimentResult:
    """Table 3: Rpeak (75 bpm input), static TDMA, cycle sweep."""
    return _reproduce_one("table3", measure_s, seed, calibration, executor)


def reproduce_table4(measure_s: float = 60.0, seed: int = 0,
                     calibration: Optional[ModelCalibration] = None,
                     executor: Optional[ScenarioExecutor] = None
                     ) -> ExperimentResult:
    """Table 4: Rpeak, dynamic TDMA, node-count sweep."""
    return _reproduce_one("table4", measure_s, seed, calibration, executor)


#: Registry of table reproductions by id.
TABLE_REPRODUCERS = {
    "table1": reproduce_table1,
    "table2": reproduce_table2,
    "table3": reproduce_table3,
    "table4": reproduce_table4,
}


def reproduce_all_tables(measure_s: float = 60.0, seed: int = 0,
                         calibration: Optional[ModelCalibration] = None,
                         executor: Optional[ScenarioExecutor] = None
                         ) -> Dict[str, ExperimentResult]:
    """Reproduce every table, batching all rows through one executor.

    All 18 row scenarios are independent, so they are submitted as one
    flat batch — with ``jobs=N`` workers the whole evaluation runs
    N-wide instead of table-by-table.  Output is identical to calling
    the four ``reproduce_table*`` functions sequentially.
    """
    cal = calibration or DEFAULT_CALIBRATION
    table_ids = sorted(_TABLE_SPECS)
    per_table = {
        table_id: _TABLE_SPECS[table_id][1](measure_s, seed, cal)
        for table_id in table_ids
    }
    flat = [config for table_id in table_ids
            for config in per_table[table_id]]
    results = _resolve(executor).run_configs(flat)
    reproduced: Dict[str, ExperimentResult] = {}
    offset = 0
    for table_id in table_ids:
        table = _TABLE_SPECS[table_id][0]
        count = len(per_table[table_id])
        reproduced[table_id] = _assemble(
            table, results[offset:offset + count], measure_s)
        offset += count
    return reproduced


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Figure4Result:
    """The reproduced Figure 4 comparison."""

    streaming_radio_mj: float
    streaming_mcu_mj: float
    rpeak_radio_mj: float
    rpeak_mcu_mj: float
    measure_s: float
    paper_streaming_total_mj: float = field(
        default=FIGURE_4_STREAMING_TOTAL_MJ)
    paper_rpeak_total_mj: float = field(default=FIGURE_4_RPEAK_TOTAL_MJ)
    paper_saving: float = field(default=FIGURE_4_SAVING_FRACTION)

    @property
    def streaming_total_mj(self) -> float:
        """Our streaming bar height (radio + MCU)."""
        return self.streaming_radio_mj + self.streaming_mcu_mj

    @property
    def rpeak_total_mj(self) -> float:
        """Our Rpeak bar height (radio + MCU)."""
        return self.rpeak_radio_mj + self.rpeak_mcu_mj

    @property
    def saving(self) -> float:
        """Fractional energy saved by on-node preprocessing."""
        return 1.0 - self.rpeak_total_mj / self.streaming_total_mj


def reproduce_figure4(measure_s: float = 60.0, seed: int = 0,
                      calibration: Optional[ModelCalibration] = None,
                      executor: Optional[ScenarioExecutor] = None
                      ) -> Figure4Result:
    """Figure 4: streaming at 30 ms vs Rpeak at 120 ms, 5-node static BAN."""
    cal = calibration or DEFAULT_CALIBRATION
    configs = [
        BanScenarioConfig(
            mac="static", app="ecg_streaming", num_nodes=5, cycle_ms=30.0,
            sampling_hz=205.0, measure_s=measure_s, seed=seed,
            calibration=cal),
        BanScenarioConfig(
            mac="static", app="rpeak", num_nodes=5, cycle_ms=120.0,
            heart_rate_bpm=75.0, measure_s=measure_s, seed=seed,
            calibration=cal),
    ]
    streaming, rpeak = (result.node(REPORTED_NODE) for result in
                        _resolve(executor).run_configs(configs))
    return Figure4Result(
        streaming_radio_mj=streaming.radio_mj,
        streaming_mcu_mj=streaming.mcu_mj,
        rpeak_radio_mj=rpeak.radio_mj,
        rpeak_mcu_mj=rpeak.mcu_mj,
        measure_s=measure_s,
        paper_streaming_total_mj=_scale(FIGURE_4_STREAMING_TOTAL_MJ,
                                        measure_s),
        paper_rpeak_total_mj=_scale(FIGURE_4_RPEAK_TOTAL_MJ, measure_s),
    )


__all__ = [
    "REPORTED_NODE",
    "ExperimentRow",
    "ExperimentResult",
    "reproduce_table1",
    "reproduce_table2",
    "reproduce_table3",
    "reproduce_table4",
    "reproduce_all_tables",
    "TABLE_REPRODUCERS",
    "Figure4Result",
    "reproduce_figure4",
]
