"""Irregular-rhythm ECG generation for detector stress testing.

The paper's validation uses a metronomic 75 bpm signal; a health-care
deployment's whole purpose is the *ab*normal cases.  This module
extends the Gaussian-morphology generator with deterministic rhythm
disturbances so the Rpeak application can be exercised against them:

* **dropped beats** (sinus pause / AV block): a beat is omitted with a
  configured probability, leaving a double-length RR interval;
* **premature beats** (extrasystoles): an extra beat is inserted early,
  at a configured fraction of the RR interval, followed by a
  compensatory pause;
* **RR jitter**: beat-to-beat interval noise (on top of the base
  class's slow HRV modulation).

All randomness derives from ``(seed, beat index)`` hashes, so the
signal — and its ground-truth beat list — is a pure, reproducible
function of the constructor arguments.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Sequence

from .ecg import PQRST, SyntheticEcg, Wave


def _unit_hash(seed: int, index: int, salt: int) -> float:
    """Deterministic U(0,1) draw for beat ``index``."""
    digest = hashlib.blake2b(struct.pack("<qqq", seed, index, salt),
                             digest_size=8).digest()
    return int.from_bytes(digest, "little") / float(1 << 64)


class IrregularEcg(SyntheticEcg):
    """ECG with deterministic dropped/premature beats and RR jitter.

    Args:
        dropped_beat_prob: probability a scheduled beat is omitted.
        premature_beat_prob: probability an extra early beat is inserted
            after a scheduled one.
        premature_fraction: position of the premature beat within the
            RR interval (0.4 = at 40% of the normal spacing).
        rr_jitter_fraction: uniform +/- fractional jitter on each RR
            interval.
        seed: derives every disturbance draw.
    """

    def __init__(self, heart_rate_bpm: float = 75.0,
                 dropped_beat_prob: float = 0.0,
                 premature_beat_prob: float = 0.0,
                 premature_fraction: float = 0.4,
                 rr_jitter_fraction: float = 0.0,
                 seed: int = 0,
                 amplitude_mv: float = 1.0,
                 first_beat_s: float = 0.35,
                 morphology: Sequence[Wave] = PQRST) -> None:
        for name, prob in (("dropped_beat_prob", dropped_beat_prob),
                           ("premature_beat_prob", premature_beat_prob)):
            if not 0.0 <= prob < 1.0:
                raise ValueError(f"{name} out of [0,1): {prob}")
        if not 0.1 <= premature_fraction <= 0.9:
            raise ValueError(
                f"premature_fraction out of [0.1, 0.9]: "
                f"{premature_fraction}")
        if not 0.0 <= rr_jitter_fraction < 0.4:
            raise ValueError(
                f"rr_jitter_fraction out of [0, 0.4): "
                f"{rr_jitter_fraction}")
        super().__init__(heart_rate_bpm=heart_rate_bpm,
                         amplitude_mv=amplitude_mv,
                         first_beat_s=first_beat_s,
                         morphology=morphology)
        self.dropped_beat_prob = dropped_beat_prob
        self.premature_beat_prob = premature_beat_prob
        self.premature_fraction = premature_fraction
        self.rr_jitter_fraction = rr_jitter_fraction
        self.seed = seed
        self._schedule_index = 0
        self.beats_dropped = 0
        self.beats_premature = 0

    # ------------------------------------------------------------------
    def _ensure_beats_until(self, t_seconds: float) -> None:
        horizon = t_seconds + 2.0 * self._mean_rr_s
        while self._beats[-1] < horizon:
            self._append_next_beats()

    def _append_next_beats(self) -> None:
        index = self._schedule_index
        self._schedule_index += 1
        last = self._beats[-1]
        rr = self._mean_rr_s
        if self.rr_jitter_fraction > 0.0:
            jitter = 2.0 * _unit_hash(self.seed, index, 1) - 1.0
            rr *= 1.0 + self.rr_jitter_fraction * jitter
        scheduled = last + rr

        if self.dropped_beat_prob > 0.0 \
                and _unit_hash(self.seed, index, 2) < self.dropped_beat_prob:
            # The beat is skipped: advance time without emitting it
            # (a sinus pause of one extra RR).
            self.beats_dropped += 1
            self._beats.append(scheduled + rr)
            return

        if self.premature_beat_prob > 0.0 \
                and _unit_hash(self.seed, index, 3) \
                < self.premature_beat_prob:
            # Extrasystole: early beat, then a compensatory pause so the
            # following beat lands on the original grid.
            early = last + self.premature_fraction * rr
            self.beats_premature += 1
            self._beats.append(early)
            self._beats.append(scheduled + rr)
            return

        self._beats.append(scheduled)

    # ------------------------------------------------------------------
    def rr_intervals(self, until_s: float) -> List[float]:
        """Ground-truth RR intervals up to ``until_s``, in seconds."""
        peaks = self.r_peak_times(until_s)
        return [b - a for a, b in zip(peaks, peaks[1:])]


__all__ = ["IrregularEcg"]
