"""Property-based tests of the channel's delivery semantics.

Hypothesis draws random transmission schedules from several senders and
cross-checks the channel against an independent oracle: a frame is
delivered to a listening receiver iff (a) the receiver was in RX for
the frame's entire airtime and (b) no other frame's airtime overlapped
it at that receiver and (c) sender and receiver share the RF channel.
"""

from hypothesis import given, settings, strategies as st

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.hw.frames import Frame, FrameKind
from repro.hw.radio import Nrf2401
from repro.phy.channel import Channel
from repro.sim.kernel import Simulator
from repro.sim.simtime import microseconds, seconds

CAL = DEFAULT_CALIBRATION

# Random schedules: each sender transmits one 4-byte frame at a drawn
# start time.  TX event = 195 us settle + 96 us air + 82 us tail; the
# frame occupies the air during [start+195us, start+291us].
starts = st.lists(
    st.integers(min_value=0, max_value=2_000),  # in 10 us units
    min_size=1, max_size=6)


def airtime_interval(start_ticks: int):
    air_begin = start_ticks + microseconds(195)
    air_end = air_begin + microseconds(96)  # 12-byte frame at 1 Mbit/s
    return air_begin, air_end


def oracle_delivered(schedule):
    """Indices of frames the sink should accept (no overlap at sink)."""
    intervals = [airtime_interval(s) for s in schedule]
    delivered = []
    for index, (begin, end) in enumerate(intervals):
        clean = True
        for other, (obegin, oend) in enumerate(intervals):
            if other == index:
                continue
            if begin < oend and obegin < end:
                clean = False
                break
        if clean:
            delivered.append(index)
    return delivered


class TestChannelDeliveryOracle:
    @given(starts)
    @settings(max_examples=40, deadline=None)
    def test_delivery_matches_overlap_oracle(self, raw_starts):
        schedule = [microseconds(10) * s for s in raw_starts]
        sim = Simulator()
        channel = Channel(sim)
        sink = Nrf2401(sim, CAL, channel, "sink")
        received = []
        sink.on_frame = lambda frame: received.append(frame.payload)
        sink.power_up()
        sink.start_rx()
        for index, start in enumerate(schedule):
            sender = Nrf2401(sim, CAL, channel, f"s{index}")
            sender.power_up()
            frame = Frame(src=f"s{index}", dest="sink",
                          kind=FrameKind.DATA, payload_bytes=4,
                          payload=index)
            sim.at(start, lambda s=sender, f=frame: s.send(f))
        sim.run_until(seconds(1.0))
        assert sorted(received) == oracle_delivered(schedule)

    @given(starts)
    @settings(max_examples=20, deadline=None)
    def test_rx_energy_equals_listen_duration(self, raw_starts):
        """Whatever the traffic, the sink's RX energy is exactly
        listen-time x RX power (delivery outcomes never change it)."""
        schedule = [microseconds(10) * s for s in raw_starts]
        sim = Simulator()
        channel = Channel(sim)
        sink = Nrf2401(sim, CAL, channel, "sink")
        sink.power_up()
        sink.start_rx()
        for index, start in enumerate(schedule):
            sender = Nrf2401(sim, CAL, channel, f"s{index}")
            sender.power_up()
            frame = Frame(src=f"s{index}", dest="sink",
                          kind=FrameKind.DATA, payload_bytes=4)
            sim.at(start, lambda s=sender, f=frame: s.send(f))
        horizon = seconds(0.5)
        sim.run_until(horizon)
        expected = (horizon / 1e9) * CAL.radio_rx_a * CAL.supply_v
        assert abs(sink.ledger.energy_j(state="rx") - expected) < 1e-12

    @given(starts)
    @settings(max_examples=20, deadline=None)
    def test_off_channel_senders_are_inaudible(self, raw_starts):
        schedule = [microseconds(10) * s for s in raw_starts]
        sim = Simulator()
        channel = Channel(sim)
        sink = Nrf2401(sim, CAL, channel, "sink")
        received = []
        sink.on_frame = received.append
        sink.power_up()
        sink.start_rx()
        for index, start in enumerate(schedule):
            sender = Nrf2401(sim, CAL, channel, f"s{index}")
            sender.power_up()
            sender.rf_channel = 40  # sink stays on channel 0
            frame = Frame(src=f"s{index}", dest="sink",
                          kind=FrameKind.DATA, payload_bytes=4)
            sim.at(start, lambda s=sender, f=frame: s.send(f))
        sim.run_until(seconds(1.0))
        assert received == []
        assert sink.snapshot_counters().corrupted == 0
