"""Ablation A1: synchronisation policy.

DESIGN.md calls out the beacon-listen guard window as the dominant
radio cost (the fitted platform window is ~3.3 ms/cycle — ~90% of the
node's radio energy is idle listening).  This ablation swaps the
calibrated platform policy for the physically-tight drift-tracking
guard (50 ppm crystals, 250 us margin) and quantifies the headroom the
paper's platform leaves on the table: the radio energy drops by well
over half, without losing a single beacon.
"""

from conftest import bench_measure_s, run_once
from repro.core.losses import RadioEnergyCategory
from repro.mac.sync import DriftTrackingLead
from repro.net.scenario import BanScenarioConfig, BanScenario


def run_pair(measure_s: float):
    base = BanScenarioConfig(mac="static", app="ecg_streaming",
                             num_nodes=5, cycle_ms=30.0,
                             sampling_hz=205.0, measure_s=measure_s)
    platform = BanScenario(base).run()
    tight_config = BanScenarioConfig(
        mac="static", app="ecg_streaming", num_nodes=5, cycle_ms=30.0,
        sampling_hz=205.0, measure_s=measure_s,
        sync_policy_factory=lambda cal: DriftTrackingLead(
            tolerance_ppm=50.0))
    tight = BanScenario(tight_config)
    tight_result = tight.run()
    return platform, tight, tight_result


def test_ablation_sync_policy(benchmark):
    measure_s = bench_measure_s()
    platform, tight_scenario, tight = run_once(benchmark, run_pair,
                                               measure_s)

    platform_node = platform.node("node1")
    tight_node = tight.node("node1")
    saving = 1.0 - tight_node.radio_mj / platform_node.radio_mj

    benchmark.extra_info["platform_radio_mj"] = round(
        platform_node.radio_mj, 1)
    benchmark.extra_info["tight_radio_mj"] = round(tight_node.radio_mj, 1)
    benchmark.extra_info["radio_saving"] = round(saving, 3)
    print(f"\nA1 sync ablation over {measure_s:.0f} s: platform window "
          f"{platform_node.radio_mj:.1f} mJ -> drift-tracking "
          f"{tight_node.radio_mj:.1f} mJ ({100 * saving:.0f}% saved)")

    # The tight guard saves more than half the radio energy...
    assert saving > 0.5
    # ...while remaining functionally perfect (no beacon ever missed).
    for node in tight_scenario.nodes:
        assert node.mac.counters.beacons_missed == 0
    # Idle listening collapses from ~90% to a small share.
    assert platform_node.loss_fraction(
        RadioEnergyCategory.IDLE_LISTENING) > 0.8
    assert tight_node.loss_fraction(
        RadioEnergyCategory.IDLE_LISTENING) \
        < platform_node.loss_fraction(RadioEnergyCategory.IDLE_LISTENING)
