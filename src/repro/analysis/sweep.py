"""Generic parameter sweeps over BAN scenarios.

The design-space exploration the paper motivates ("this model can be
employed to tune the node architecture and communication layer for
different working conditions") needs systematic sweeps.
:func:`sweep_scenarios` runs one scenario per parameter value and
collects the reported node's figures; higher-level helpers cover the
common axes (cycle length, node count, heart rate, sync policy).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..core.report import NodeEnergyResult
from ..net.scenario import BanScenario, BanScenarioConfig
from .experiments import REPORTED_NODE


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the swept value and the reported node's result."""

    value: float
    node: NodeEnergyResult

    @property
    def total_mj(self) -> float:
        """Radio + MCU energy at this point."""
        return self.node.total_mj


def sweep_scenarios(base: BanScenarioConfig, parameter: str,
                    values: Sequence[float],
                    node_id: str = REPORTED_NODE) -> List[SweepPoint]:
    """Run ``base`` once per value of ``parameter``.

    ``parameter`` must be a field of :class:`BanScenarioConfig`; each
    run uses ``dataclasses.replace`` so the base config is untouched.
    """
    if parameter not in {f.name for f in dataclasses.fields(base)}:
        raise ValueError(
            f"{parameter!r} is not a BanScenarioConfig field")
    points: List[SweepPoint] = []
    for value in values:
        config = dataclasses.replace(base, **{parameter: value})
        result = BanScenario(config).run()
        points.append(SweepPoint(value=float(value),
                                 node=result.node(node_id)))
    return points


def sweep_custom(base: BanScenarioConfig, values: Sequence[float],
                 make_config: Callable[[BanScenarioConfig, float],
                                       BanScenarioConfig],
                 node_id: str = REPORTED_NODE) -> List[SweepPoint]:
    """Sweep with an arbitrary config transformation per value."""
    points: List[SweepPoint] = []
    for value in values:
        result = BanScenario(make_config(base, value)).run()
        points.append(SweepPoint(value=float(value),
                                 node=result.node(node_id)))
    return points


def sweep_cycle_ms(base: BanScenarioConfig,
                   cycles_ms: Sequence[float]) -> List[SweepPoint]:
    """Sweep the static-TDMA cycle length."""
    return sweep_scenarios(base, "cycle_ms", cycles_ms)


def sweep_num_nodes(base: BanScenarioConfig,
                    counts: Sequence[int]) -> List[SweepPoint]:
    """Sweep the network size (dynamic-TDMA cycle follows)."""
    return sweep_custom(
        base, [float(c) for c in counts],
        lambda cfg, v: dataclasses.replace(cfg, num_nodes=int(v)))


def sweep_heart_rate(base: BanScenarioConfig,
                     rates_bpm: Sequence[float]) -> List[SweepPoint]:
    """Sweep the input heart rate (Rpeak traffic scales with it)."""
    return sweep_scenarios(base, "heart_rate_bpm", rates_bpm)


def as_table(points: Sequence[SweepPoint],
             value_name: str = "value") -> List[Dict[str, float]]:
    """Flatten sweep points into plain records for rendering/CSV."""
    return [{
        value_name: p.value,
        "radio_mj": p.node.radio_mj,
        "mcu_mj": p.node.mcu_mj,
        "total_mj": p.total_mj,
        "avg_power_mw": p.node.average_power_mw,
    } for p in points]


__all__ = [
    "SweepPoint",
    "sweep_scenarios",
    "sweep_custom",
    "sweep_cycle_ms",
    "sweep_num_nodes",
    "sweep_heart_rate",
    "as_table",
]
