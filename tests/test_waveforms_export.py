"""Tests for waveform probing / VCD export and result exporters."""

import io
import json

import pytest

from conftest import quick_config
from repro.analysis.experiments import reproduce_table3
from repro.analysis.export import (
    experiment_records,
    network_records,
    to_csv,
    to_json,
)
from repro.analysis.waveforms import WaveformProbe
from repro.net.scenario import BanScenario
from repro.sim.simtime import microseconds, milliseconds, seconds


@pytest.fixture(scope="module")
def probed_run():
    scenario = BanScenario(quick_config(num_nodes=2, measure_s=2.0))
    probe = WaveformProbe.attach_to_scenario(scenario)
    result = scenario.run()
    return scenario, probe, result


class TestWaveformProbe:
    def test_signals_enumerated(self, probed_run):
        _, probe, _ = probed_run
        assert "node1.radio" in probe.signals
        assert "node2.mcu" in probe.signals
        assert "base_station.radio" in probe.signals

    def test_unknown_signal_raises(self, probed_run):
        _, probe, _ = probed_run
        with pytest.raises(KeyError):
            probe.timeline("nope")
        with pytest.raises(KeyError):
            probe.intervals("nope", "rx")

    def test_duplicate_attach_rejected(self, probed_run):
        scenario, probe, _ = probed_run
        with pytest.raises(ValueError):
            probe.attach("node1.radio", scenario.nodes[0].radio.ledger)

    def test_rx_windows_have_calibrated_length(self, probed_run):
        """The probe exposes exact RX intervals: steady-state windows
        must equal lead + beacon airtime + RX tail."""
        scenario, probe, _ = probed_run
        end = scenario.sim.now
        windows = probe.intervals("node1.radio", "rx", end_time=end)
        assert len(windows) > 50
        cal = scenario.config.calibration
        expected = seconds(cal.sync.static_lead_s) \
            + microseconds(8 * (4 + 3 + 8)) \
            + seconds(cal.radio_timing.rx_tail_s)
        steady = windows[5:-5]
        # The base station's wake-latency path adds a few microseconds
        # of cycle-to-cycle jitter; windows must still sit within 10 us
        # of the calibrated value.
        for start, stop in steady:
            assert stop - start == pytest.approx(expected, abs=10_000)

    def test_tx_events_match_packet_count(self, probed_run):
        scenario, probe, result = probed_run
        end = scenario.sim.now
        tx = probe.intervals("node1.radio", "tx", end_time=end)
        # Warm-up packets included in the waveform; at least the
        # measured count must be present.
        assert len(tx) >= result.node("node1").traffic.data_tx

    def test_tx_windows_are_485us(self, probed_run):
        scenario, probe, _ = probed_run
        end = scenario.sim.now
        for start, stop in probe.intervals("node1.radio", "tx",
                                           end_time=end)[:20]:
            assert stop - start == microseconds(485)

    def test_mcu_duty_cycle_from_waveform(self, probed_run):
        scenario, probe, _ = probed_run
        end = scenario.sim.now
        active = sum(stop - start for start, stop in
                     probe.intervals("node1.mcu", "active", end_time=end))
        # Streaming at 30 ms: ~21-23% active duty.
        assert 0.15 < active / end < 0.30

    def test_vcd_structure(self, probed_run):
        _, probe, _ = probed_run
        buffer = io.StringIO()
        probe.write_vcd(buffer)
        text = buffer.getvalue()
        assert text.startswith("$date")
        assert "$timescale 1 ns $end" in text
        assert "$var string 1" in text
        assert "node1_radio" in text
        assert "$enddefinitions $end" in text
        # Time markers are monotonically non-decreasing.
        times = [int(line[1:]) for line in text.splitlines()
                 if line.startswith("#")]
        assert times == sorted(times)
        assert any(line.startswith("srx") for line in text.splitlines())

    def test_vcd_to_file(self, probed_run, tmp_path):
        _, probe, _ = probed_run
        path = tmp_path / "ban.vcd"
        probe.write_vcd(path)
        assert path.read_text().startswith("$date")


class TestExport:
    def test_network_records_shape(self, probed_run):
        _, _, result = probed_run
        records = network_records(result)
        assert len(records) == 3  # 2 nodes + base station
        first = records[0]
        assert {"node", "radio_mj", "mcu_mj", "loss_idle_listening_mj",
                "data_tx"} <= set(first)

    def test_network_records_without_bs(self, probed_run):
        _, _, result = probed_run
        assert len(network_records(result,
                                   include_base_station=False)) == 2

    def test_csv_roundtrip_columns(self, probed_run):
        _, _, result = probed_run
        records = network_records(result)
        csv = to_csv(records)
        lines = csv.strip().splitlines()
        assert len(lines) == len(records) + 1
        assert lines[0].split(",")[0] == "node"
        assert all(len(line.split(",")) == len(records[0])
                   for line in lines)

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_json_parses(self, probed_run):
        _, _, result = probed_run
        parsed = json.loads(to_json(network_records(result)))
        assert parsed[0]["radio_mj"] > 0

    def test_experiment_records(self):
        table = reproduce_table3(measure_s=2.0)
        records = experiment_records(table)
        assert len(records) == 4
        assert records[0]["table"] == "table3"
        assert 0 <= records[0]["radio_err_vs_real"] < 0.2
