"""Determinism & simulation-safety lint suite (``repro.lint``).

The paper's headline claim is an energy estimate within ~4 % of
hardware; this reproduction's equivalent claim is *bit-exact
determinism* — the result cache, the "merged parallel metrics equal
sequential" invariant and the "no-fault ledgers stay byte-identical"
guarantee all silently break if simulation code starts drawing from the
global RNG, reading the wall clock, or iterating a ``set`` where the
order can reach the event queue.  ``repro.lint`` turns those reviewer
rules into named, machine-checked ones:

========  ==========================================================
Code      Rule
========  ==========================================================
DET001    no global/module-level RNG draws (seeded ``random.Random``
          / NumPy ``Generator`` instances stay legal)
DET002    no wall-clock reads outside the configured allowlist
DET003    no iteration over sets in order-sensitive packages
FLT001    no float ``==``/``!=`` on energy/time-like values
EXC001    no bare or overbroad ``except`` without a reasoned waiver
MUT001    no mutable default arguments
CFG001    cache-fingerprinted config dataclasses must be annotated
          and hash-stable
========  ==========================================================

On top of the per-line rules sit three *flow-sensitive tree analyses*
(:mod:`repro.lint.dataflow` holds the shared machinery):

========  ==========================================================
Code      Analysis
========  ==========================================================
UNI001-4  dimensional checking of the energy model: units are seeded
          from identifier suffixes (``_s``, ``_ma``, ``_mj``...) and
          ``# unit: <expr>`` annotations, then propagated through
          assignments, arithmetic and conversion calls
          (:mod:`repro.lint.units`)
SM001-5   power-state machines encoded in the hardware models are
          verified against the ``TransitionSpec`` tables declared in
          :mod:`repro.core.states`
          (:mod:`repro.lint.statemachine`)
RNG001-2  RNG provenance: every constructed generator must be seeded
          from a value that derives from a seed parameter or a
          Simulator-owned stream (:mod:`repro.lint.rngprov`)
SUP002    waivers whose rule no longer fires on the waived line are
          themselves findings (stale-waiver detection)
========  ==========================================================

Run it as ``repro-ban lint src`` or ``python -m repro.lint src``.
Findings are suppressed per line with a *reasoned* comment::

    except Exception as exc:  # lint: allow(EXC001): re-raised annotated

A suppression without a reason does not suppress — it is itself
reported (SUP001), and one whose rule has stopped firing goes stale
(SUP002).  Rule configuration lives in ``pyproject.toml`` under
``[tool.repro-lint]``; see :mod:`repro.lint.config` and
``docs/static_analysis.md`` for the catalog and the suppression
policy.  The dynamic counterpart proving these static rules guard a
real invariant is ``tools/determinism_check.py``.
"""

from __future__ import annotations

from .config import LintConfig, load_config
from .engine import FileContext, Finding, LintReport, lint_paths, lint_source
from .report import render_json, render_text
from .rules import ANALYSIS_RULES, RULES, all_rule_codes

__all__ = [
    "ANALYSIS_RULES",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "all_rule_codes",
    "lint_paths",
    "lint_source",
    "load_config",
    "render_json",
    "render_text",
]
