"""Unslotted ALOHA: the contention baseline TDMA is measured against.

The paper chooses TDMA for the BAN without quantifying the
alternative.  This module supplies it: the simplest possible MAC for
unidirectional node→base-station data.

* **Nodes never listen.**  There are no beacons and no
  synchronisation; a node polls its application every
  ``poll_interval`` and, when a payload exists, transmits it at a
  uniformly random instant inside the next poll window.  Radio energy
  is therefore *TX events only* — the guard windows that dominate the
  TDMA budget vanish entirely.
* **The base station listens continuously** (it does under TDMA too).
* **Nothing prevents collisions.**  Two nodes' transmissions overlap
  with probability ~ N·airtime/interval per frame; collided frames are
  CRC-discarded at the base station, and with no acknowledgements
  (ShockBurst has none) the loss is silent.

The resulting trade — ALOHA beats TDMA on node energy by an order of
magnitude but cannot bound its delivery ratio, and the gap widens with
offered load — is ablation A9 (`bench_ablation_aloha.py`).  It also
isolates how much of the TDMA energy is *coordination overhead*:
everything except the bare TX events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..core.calibration import ModelCalibration
from ..hw.frames import Frame, FrameKind
from ..hw.radio import Nrf2401, TxOutcome
from ..sim.kernel import Simulator
from ..sim.simtime import milliseconds
from ..sim.trace import TraceRecorder
from ..tinyos.components import Component
from ..tinyos.scheduler import TaskScheduler
from .base import AppPayload, MacCounters
from .messages import make_data

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..obs.spans import SpanTracer


@dataclass(frozen=True)
class AlohaConfig:
    """Parameters of the ALOHA baseline.

    Attributes:
        poll_interval_ticks: how often a node offers its application a
            transmission opportunity (compare to the TDMA cycle).
        base_station: the collector's address.
        start_jitter: whether the first poll is randomised per node
            (decorrelates identically configured nodes).
    """

    poll_interval_ticks: int = milliseconds(30)
    base_station: str = "base_station"
    start_jitter: bool = True

    def __post_init__(self) -> None:
        if self.poll_interval_ticks <= 0:
            raise ValueError(
                f"poll interval must be positive: "
                f"{self.poll_interval_ticks}")


class AlohaNodeMac(Component):
    """Node side: poll the application, transmit at random instants."""

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 config: AlohaConfig,
                 name: Optional[str] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, name or f"{radio.address}.mac", trace)
        self._radio = radio
        self._scheduler = scheduler
        self._cal = calibration
        self.config = config
        self.counters = MacCounters()
        #: Application hook, identical contract to the TDMA MACs.
        self.payload_provider: Optional[Callable[[], Optional[AppPayload]]] \
            = None
        #: Optional causal-span tracer (:mod:`repro.obs.spans`).
        self.spans: Optional["SpanTracer"] = None
        self._stop_pending = False

    # The scenario runner aligns measurement windows via these two
    # attributes on any base MAC; nodes expose the poll interval for
    # symmetry/diagnostics.
    @property
    def poll_interval_ticks(self) -> int:
        """The node's transmission-opportunity period."""
        return self.config.poll_interval_ticks

    def on_start(self) -> None:
        self._stop_pending = False
        self._radio.power_up()
        interval = self.config.poll_interval_ticks
        if self.config.start_jitter:
            first = self._sim.rng.uniform_ticks(
                f"{self._radio.address}.aloha_start", 0, interval - 1)
        else:
            first = 0
        self._sim.after(first, self._poll, label=f"{self.name}.poll")

    def on_stop(self) -> None:
        # Symmetric with the collector: stopping the MAC releases the
        # radio, so a post-window drain no longer accrues stand-by
        # energy against this node.  Mid-ShockBurst the chip cannot be
        # switched off; defer to the TX-completion callback.
        if self._radio.is_transmitting:
            self._stop_pending = True
            return
        self._radio.power_down()

    def _poll(self) -> None:
        if not self.started:
            return
        interval = self.config.poll_interval_ticks
        self._sim.after(interval, self._poll, label=f"{self.name}.poll")
        if self.payload_provider is None:
            return
        payload = self.payload_provider()
        if payload is None:
            return
        payload_bytes, content = payload
        frame = make_data(self._radio.address, self.config.base_station,
                          payload_bytes, content)
        tx_event = self._radio.tx_event_ticks(frame)
        if tx_event > interval:
            # The ShockBurst event would not fit inside one poll window:
            # any offset makes the airtime spill into the next window
            # and collide with this node's own next transmission.  Skip
            # the frame deterministically (no RNG draw) and count it.
            self.counters.oversize_skipped += 1
            if self._trace is not None:
                self._trace.record(self._sim.now, self.name,
                                   "oversize_skip", frame.describe())
            return
        offset = self._sim.rng.uniform_ticks(
            f"{self._radio.address}.aloha_tx", 0, interval - tx_event)
        if self.spans is not None:
            self.spans.note_wait(self._radio.address, "mac.tx_jitter",
                                 self._sim.now, self._sim.now + offset)
        self._sim.after(offset, lambda: self._queue_tx(frame),
                        label=f"{self.name}.tx_at")

    def _queue_tx(self, frame: Frame) -> None:
        if not self.started:
            return
        label = f"{self.name}.pkt_prep"
        if self.spans is not None:
            self.spans.packet_queued(frame, self._sim.now, label)
        self._scheduler.post(lambda: self._send(frame),
                             self._cal.mcu_costs.packet_preparation,
                             label=label)

    def _send(self, frame: Frame) -> None:
        # The prep task may drain after a stop (crash faults power the
        # radio down); sending then would be a RadioError.
        if not self.started:
            return
        self._radio.send(frame, self._tx_done)

    def _tx_done(self, outcome: TxOutcome) -> None:
        self.counters.data_sent += 1
        if self._stop_pending and not self.started:
            self._stop_pending = False
            self._radio.power_down()

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull the node's MAC counters and poll period.

        ALOHA has no beacons or slots, so only the shared counters and
        the transmission-opportunity period apply.  Read-only: call
        once per collected run.
        """
        self.counters.observe_metrics(registry, node)
        registry.gauge("mac", node, "poll_interval_ticks").set(
            float(self.config.poll_interval_ticks))


class AlohaBaseMac(Component):
    """Base-station side: a permanently listening collector."""

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 config: AlohaConfig,
                 name: Optional[str] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, name or f"{radio.address}.mac", trace)
        self._radio = radio
        self._scheduler = scheduler
        self._cal = calibration
        self.config = config
        self.counters = MacCounters()
        #: Upward hook, identical contract to the TDMA base MACs.
        self.data_sink: Optional[Callable[[Frame], None]] = None
        #: Scenario-alignment attributes (no beacons: the "cycle" is the
        #: poll interval and the grid starts at t=0).
        self.next_beacon_ticks = 0
        radio.on_frame = self._on_frame

    def current_cycle_ticks(self) -> int:
        """Alignment period for the scenario runner (poll interval)."""
        return self.config.poll_interval_ticks

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull the collector's MAC counters (no schedule to report)."""
        self.counters.observe_metrics(registry, node)

    def on_start(self) -> None:
        self._radio.power_up()
        self._radio.start_rx()

    def on_stop(self) -> None:
        # Release the radio, not just the RX state: a collector left in
        # stand-by after its window keeps booking 0.9 mA forever.  The
        # collector never transmits, so no mid-ShockBurst deferral is
        # needed here.
        if self._radio.is_receiving:
            self._radio.stop_rx()
        self._radio.power_down()

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.DATA:
            self.counters.software_discards += 1
            self._scheduler.post_cost_only(
                self._cal.mcu_costs.packet_reception,
                label=f"{self.name}.sw_discard")
            return
        self.counters.data_received += 1
        self._scheduler.post_cost_only(
            self._cal.mcu_costs.packet_reception,
            label=f"{self.name}.data_rx")
        if self.data_sink is not None:
            self.data_sink(frame)


__all__ = ["AlohaConfig", "AlohaNodeMac", "AlohaBaseMac"]
