"""Benchmark: Table 3 — Rpeak application, static TDMA, cycle sweep.

Regenerates Table 3 (on-node beat detection at the fixed 200 Hz, 75 bpm
input ECG, cycles 30/60/90/120 ms, 5-node BAN, 60 s).  The paper's best
table (2.2% radio / 2.1% MCU vs hardware); ours must match both its
simulator (< 3%) and the hardware (< 6%).
"""

from conftest import record_table, run_once
from repro.analysis.experiments import reproduce_table3
from repro.data.paper_tables import TABLE_1


def test_table3_rpeak_static_tdma(benchmark, measure_s):
    result = run_once(benchmark, reproduce_table3, measure_s=measure_s)
    record_table(benchmark, result)

    assert result.mean_error("paper_sim", "radio") < 0.03
    assert result.mean_error("paper_sim", "mcu") < 0.04
    assert result.mean_error("real", "radio") < 0.06
    assert result.mean_error("real", "mcu") < 0.06

    # Cross-table shape: at the same 30 ms cycle, Rpeak's radio energy
    # must undercut streaming's ("the radio energy consumption can be
    # reduced up to 20%") — compare against Table 1's published row
    # scaled to this window.
    streaming_30ms = TABLE_1.rows[0].radio_sim_mj * measure_s / 60.0
    rpeak_30ms = result.rows[0].radio_ours_mj
    saving = 1.0 - rpeak_30ms / streaming_30ms
    assert 0.03 < saving < 0.25
