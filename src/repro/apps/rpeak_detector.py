"""Streaming R-peak (heart beat) detector.

The paper's Rpeak application calls, for every sample, "an algorithm
that returns 0 if the current sample is not a beat.  Otherwise, it
returns a positive value that indicates how many samples ago a beat was
detected in that channel" (Section 5.2).  This module implements such a
streaming detector with the same contract.

The algorithm is a lightweight adaptive-threshold peak picker suitable
for an MSP430-class MCU:

1. remove baseline wander with a slow exponential moving average;
2. track the running beat amplitude with a decaying peak estimate;
3. a sample crossing ``threshold_fraction`` of the tracked amplitude
   opens a *candidate* region; the local maximum inside it is the beat;
4. the beat is confirmed when the signal falls back below the
   threshold, at which point :meth:`process` returns the lag (in
   samples) between the confirmation sample and the peak sample;
5. a refractory period (default 250 ms) blocks double detection of the
   same QRS complex (T waves, noise).

Its modelled MCU cost is the calibrated ``rpeak_algorithm`` constant;
its Python cost is O(1) per sample.
"""

from __future__ import annotations

from typing import Optional


class RPeakDetector:
    """Per-channel streaming beat detector.

    Args:
        sampling_hz: sampling frequency the sample stream arrives at.
        baseline_alpha: EMA coefficient for baseline removal.
        amplitude_decay: per-sample decay of the tracked beat amplitude.
        threshold_fraction: candidate threshold as a fraction of the
            tracked amplitude.
        refractory_s: minimum beat-to-beat spacing.
        warmup_s: initial interval during which the amplitude tracker
            trains and no beats are reported.
    """

    def __init__(self, sampling_hz: float,
                 baseline_alpha: float = 0.02,
                 amplitude_decay: float = 0.9995,
                 threshold_fraction: float = 0.5,
                 refractory_s: float = 0.25,
                 warmup_s: float = 0.5) -> None:
        if sampling_hz <= 0:
            raise ValueError(f"sampling rate must be positive: {sampling_hz}")
        if not 0 < baseline_alpha < 1:
            raise ValueError(f"baseline_alpha out of (0,1): {baseline_alpha}")
        if not 0 < amplitude_decay <= 1:
            raise ValueError(
                f"amplitude_decay out of (0,1]: {amplitude_decay}")
        if not 0 < threshold_fraction < 1:
            raise ValueError(
                f"threshold_fraction out of (0,1): {threshold_fraction}")
        self.sampling_hz = sampling_hz
        self._alpha = baseline_alpha
        self._decay = amplitude_decay
        self._fraction = threshold_fraction
        self._refractory = max(1, round(refractory_s * sampling_hz))
        self._warmup = max(1, round(warmup_s * sampling_hz))

        self._index = -1
        self._baseline: Optional[float] = None
        self._amplitude = 0.0
        self._last_beat_index: Optional[int] = None
        self._in_candidate = False
        self._candidate_peak = 0.0
        self._candidate_index = 0
        self.beats_detected = 0

    # ------------------------------------------------------------------
    def process(self, value: float) -> int:
        """Feed one sample; returns 0 or the lag to a confirmed beat.

        The returned lag counts samples between the beat's peak and the
        current sample (the paper's "how many samples ago" contract).
        """
        self._index += 1
        if self._baseline is None:
            self._baseline = value
        filtered = value - self._baseline
        self._baseline += self._alpha * (value - self._baseline)

        # Track the running beat amplitude (decaying max of |filtered|).
        self._amplitude *= self._decay
        if filtered > self._amplitude:
            self._amplitude = filtered

        if self._index < self._warmup:
            return 0

        threshold = self._fraction * self._amplitude
        if threshold <= 0:
            return 0

        if not self._in_candidate:
            if filtered >= threshold and self._refractory_passed():
                self._in_candidate = True
                self._candidate_peak = filtered
                self._candidate_index = self._index
            return 0

        # Inside a candidate region: follow the local maximum.
        if filtered > self._candidate_peak:
            self._candidate_peak = filtered
            self._candidate_index = self._index
            return 0
        if filtered >= threshold:
            return 0

        # Fell below threshold: confirm the beat at the tracked peak.
        self._in_candidate = False
        self._last_beat_index = self._candidate_index
        self.beats_detected += 1
        return self._index - self._candidate_index

    def _refractory_passed(self) -> bool:
        if self._last_beat_index is None:
            return True
        return (self._index - self._last_beat_index) >= self._refractory

    @property
    def samples_processed(self) -> int:
        """Number of samples fed so far."""
        return self._index + 1

    @property
    def last_beat_index(self) -> Optional[int]:
        """Sample index of the most recent confirmed beat."""
        return self._last_beat_index


__all__ = ["RPeakDetector"]
