"""The paper's published results (Tables 1-4 and Figure 4), verbatim.

These are the reproduction's reference data: the *Real* columns are the
authors' hardware measurements (our "testbed" substitute), the *Sim*
columns are their TOSSIM-based estimates.  Our benchmarks regenerate
the Sim side and report both comparisons.

All energies are millijoules over a 60 s window for the ECG node of a
5-node BAN (Section 5); the constant-power 25-channel ASIC is excluded,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class TableRow:
    """One row of a validation table.

    ``parameter`` is the row's swept value: the per-channel sampling
    frequency [Hz] for Table 1, the node count for Tables 2 and 4, and
    the TDMA cycle [ms] for Table 3.
    """

    parameter: float
    cycle_ms: float
    radio_real_mj: float
    radio_sim_mj: float
    mcu_real_mj: float
    mcu_sim_mj: float

    @property
    def radio_error(self) -> float:
        """Paper's |real - sim| / real for the radio."""
        return abs(self.radio_real_mj - self.radio_sim_mj) \
            / self.radio_real_mj

    @property
    def mcu_error(self) -> float:
        """Paper's |real - sim| / real for the MCU."""
        return abs(self.mcu_real_mj - self.mcu_sim_mj) / self.mcu_real_mj


@dataclass(frozen=True)
class PaperTable:
    """One published validation table."""

    table_id: str
    caption: str
    parameter_name: str
    rows: Tuple[TableRow, ...]
    #: Average errors as printed in the paper (radio, MCU), fractions.
    printed_avg_error: Tuple[float, float]

    def mean_radio_error(self) -> float:
        """Average radio error recomputed from the rows."""
        return sum(r.radio_error for r in self.rows) / len(self.rows)

    def mean_mcu_error(self) -> float:
        """Average MCU error recomputed from the rows."""
        return sum(r.mcu_error for r in self.rows) / len(self.rows)


#: Table 1 — ECG streaming application, static TDMA (sampling sweep).
TABLE_1 = PaperTable(
    table_id="table1",
    caption="Simulator estimations for ECG streaming application "
            "and static TDMA",
    parameter_name="F (Hz)",
    rows=(
        TableRow(205.0, 30.0, 540.6, 502.9, 170.2, 161.2),
        TableRow(105.0, 60.0, 267.7, 252.9, 131.6, 135.9),
        TableRow(70.0, 90.0, 177.2, 167.9, 119.4, 127.6),
        TableRow(55.0, 120.0, 132.2, 126.2, 113.7, 123.5),
    ),
    printed_avg_error=(0.056, 0.060),
)

#: Table 2 — ECG streaming application, dynamic TDMA (node-count sweep).
TABLE_2 = PaperTable(
    table_id="table2",
    caption="Simulator estimations for ECG streaming application "
            "and dynamic TDMA",
    parameter_name="# nodes",
    rows=(
        TableRow(1, 20.0, 628.5, 665.6, 165.9, 178.1),
        TableRow(2, 30.0, 451.4, 496.5, 140.2, 147.6),
        TableRow(3, 40.0, 356.9, 354.8, 137.4, 142.6),
        TableRow(4, 50.0, 298.4, 281.8, 130.4, 132.3),
        TableRow(5, 60.0, 263.9, 249.5, 122.9, 129.9),
    ),
    printed_avg_error=(0.055, 0.047),
)

#: Table 3 — Rpeak application, static TDMA (cycle sweep, 200 Hz fixed).
TABLE_3 = PaperTable(
    table_id="table3",
    caption="Simulator estimations for Rpeak application and static TDMA",
    parameter_name="Cycle (ms)",
    rows=(
        TableRow(30.0, 30.0, 446.3, 455.4, 153.3, 145.41),
        TableRow(60.0, 60.0, 228.5, 229.6, 139.8, 137.0),
        TableRow(90.0, 90.0, 159.0, 154.4, 135.5, 134.3),
        TableRow(120.0, 120.0, 113.1, 116.7, 133.1, 132.8),
    ),
    printed_avg_error=(0.022, 0.021),
)

#: Table 4 — Rpeak application, dynamic TDMA (node-count sweep).
TABLE_4 = PaperTable(
    table_id="table4",
    caption="Simulator estimations for Rpeak application and dynamic TDMA",
    parameter_name="# nodes",
    rows=(
        TableRow(1, 20.0, 507.1, 494.9, 150.7, 153.0),
        TableRow(2, 30.0, 405.6, 373.1, 144.3, 141.3),
        TableRow(3, 40.0, 305.5, 299.9, 141.0, 137.2),
        TableRow(4, 50.0, 255.7, 246.0, 138.6, 135.9),
        TableRow(5, 60.0, 222.1, 210.5, 136.3, 134.5),
    ),
    printed_avg_error=(0.043, 0.033),
)

#: All four validation tables.
ALL_TABLES = (TABLE_1, TABLE_2, TABLE_3, TABLE_4)


@dataclass(frozen=True)
class Figure4Bar:
    """One bar group of Figure 4 (radio + MCU stacked energies)."""

    label: str
    source: str  # "real" or "sim"
    radio_mj: float
    mcu_mj: float

    @property
    def total_mj(self) -> float:
        """Stacked total (what the figure's bar height shows)."""
        return self.radio_mj + self.mcu_mj


#: Figure 4 — ECG streaming (30 ms cycle) vs Rpeak (120 ms cycle).
FIGURE_4 = (
    Figure4Bar("ECG streaming", "real", 540.6, 170.2),
    Figure4Bar("ECG streaming", "sim", 502.9, 161.2),
    Figure4Bar("Rpeak", "real", 113.1, 133.1),
    Figure4Bar("Rpeak", "sim", 116.7, 132.8),
)

#: The paper's headline Figure-4 numbers: streaming total, Rpeak total,
#: and the resulting saving ("the total energy can be reduced to 246.2
#: mJ, with a energy save of 65%").
FIGURE_4_STREAMING_TOTAL_MJ = 710.8
FIGURE_4_RPEAK_TOTAL_MJ = 246.2
FIGURE_4_SAVING_FRACTION = 0.65  # unit: ratio

#: Overall average estimation error the abstract/conclusion report.
PAPER_OVERALL_ERROR = 0.04  # unit: ratio


__all__ = [
    "TableRow",
    "PaperTable",
    "TABLE_1",
    "TABLE_2",
    "TABLE_3",
    "TABLE_4",
    "ALL_TABLES",
    "Figure4Bar",
    "FIGURE_4",
    "FIGURE_4_STREAMING_TOTAL_MJ",
    "FIGURE_4_RPEAK_TOTAL_MJ",
    "FIGURE_4_SAVING_FRACTION",
    "PAPER_OVERALL_ERROR",
]
