"""25-channel biopotential ASIC model.

The IMEC front-end ASIC extracts up to 24 EEG channels plus 1 ECG channel
(Section 3).  Its power consumption is constant — 10.5 mW at 3.0 V — and
the paper therefore excludes it from the validation tables; we model it
anyway so whole-node budgets and battery-lifetime projections are
possible (:class:`~repro.core.report.NodeEnergyResult` carries it in a
separate field).

Electrically the ASIC has a single "on" state; functionally it exposes
analog channel outputs the MCU's ADC samples.  Channels are backed by
:class:`~repro.signals.sources.SignalSource` objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..core.calibration import ModelCalibration
from ..core.ledger import PowerStateLedger
from ..core.states import PowerState, PowerStateTable
from ..sim.kernel import Simulator
from ..sim.simtime import to_seconds

if TYPE_CHECKING:
    from ..signals.sources import SignalSource

#: Total number of analog channels (24 EEG + 1 ECG).
NUM_CHANNELS = 25

#: Index of the dedicated ECG channel (by convention the last one).
ECG_CHANNEL = 24


class BiopotentialAsic:
    """Constant-power sensing front-end with pluggable channel sources."""

    def __init__(self, sim: Simulator, calibration: ModelCalibration,
                 name: str = "asic") -> None:
        self._sim = sim
        self._cal = calibration
        self.name = name
        current_a = calibration.asic_power_w / calibration.asic_supply_v
        table = PowerStateTable([
            PowerState("on", current_a),
            PowerState("off", 0.0),
        ])
        self.ledger = PowerStateLedger(
            sim, name, table, calibration.asic_supply_v, initial_state="on")
        self._sources: Dict[int, "SignalSource"] = {}
        self._reads = 0

    def connect_source(self, channel: int, source: "SignalSource") -> None:
        """Back analog ``channel`` with a signal source.

        ``source`` must provide ``value_at(t_seconds) -> float`` (see
        :mod:`repro.signals.sources`).
        """
        self._check_channel(channel)
        self._sources[channel] = source

    def read_channel(self, channel: int) -> float:
        """Instantaneous analog value of ``channel`` (volts).

        Unconnected channels read 0.0 (inputs shorted to reference).
        """
        self._check_channel(channel)
        self._reads += 1
        source = self._sources.get(channel)
        if source is None:
            return 0.0
        return source.value_at(to_seconds(self._sim.now))

    @property
    def reads(self) -> int:
        """Number of channel reads performed (diagnostics)."""
        return self._reads

    def power_off(self) -> None:
        """Shut the front-end down (not used in the paper's case studies)."""
        self.ledger.transition("off")

    def power_on(self) -> None:
        """Turn the front-end on."""
        self.ledger.transition("on")

    def energy_mj(self) -> float:
        """Total ASIC energy so far, in millijoules."""
        return self.ledger.energy_mj()

    def reset_measurement(self) -> None:
        """Clear the ledger at the start of a measurement window."""
        self.ledger.reset()
        self._reads = 0

    @staticmethod
    def _check_channel(channel: int) -> None:
        if not 0 <= channel < NUM_CHANNELS:
            raise ValueError(
                f"channel must be in [0, {NUM_CHANNELS}), got {channel}")


__all__ = ["BiopotentialAsic", "NUM_CHANNELS", "ECG_CHANNEL"]
