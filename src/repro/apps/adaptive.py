"""Adaptive cardiac monitoring: beat reports normally, raw ECG on alarm.

The paper's trade-off is static: stream everything (Section 5.1) *or*
detect beats on the node (5.2).  A clinical deployment wants both —
"sensor devices can be programmed ... to raise an alert condition when
vital signs fall outside of normal parameters" (the CodeBlue system the
related work cites).  This application closes the loop:

* **MONITOR mode** (default): behaves like the Rpeak application — beat
  detection on every sample, one small report per beat, long cycles
  possible, minimal radio energy;
* **ALARM mode**: when the measured RR intervals turn abnormal
  (bradycardia, tachycardia, or high variability — the arrhythmias
  :mod:`repro.signals.arrhythmia` synthesises), the node switches to
  raw streaming for ``alarm_hold_s`` so clinicians get waveform
  context, then falls back once the rhythm normalises.

Energy-wise the node pays streaming rates only while something is
wrong — the adaptive version of Figure 4's trade-off.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.calibration import ModelCalibration
from ..hw.adc import Adc12
from ..hw.asic import BiopotentialAsic
from ..mac.base import AppPayload, NodeMac
from ..sim.kernel import Simulator
from ..sim.simtime import seconds, to_seconds
from ..sim.trace import TraceRecorder
from ..tinyos.scheduler import TaskScheduler
from .base import SamplingApplication
from .ecg_streaming import codes_per_payload
from .rpeak import BEAT_PAYLOAD_BYTES
from .rpeak_detector import RPeakDetector


class CardiacMode(enum.Enum):
    """Operating mode of the adaptive application."""

    MONITOR = "monitor"
    ALARM = "alarm"


class AdaptiveCardiacApp(SamplingApplication):
    """Beat reports in normal rhythm; raw streaming during alarms.

    Args:
        bradycardia_bpm: alarm when the smoothed rate drops below this.
        tachycardia_bpm: alarm when it exceeds this.
        rr_irregularity: alarm when consecutive RR intervals differ by
            more than this fraction.
        alarm_hold_s: minimum time to remain streaming after the last
            abnormal observation.
        payload_bytes: streaming payload per cycle in ALARM mode.
    """

    def __init__(self, sim: Simulator, scheduler: TaskScheduler,
                 asic: BiopotentialAsic, adc: Adc12, mac: NodeMac,
                 calibration: ModelCalibration,
                 channels: Sequence[int] = (0, 1),
                 sampling_hz: float = 200.0,
                 bradycardia_bpm: float = 45.0,
                 tachycardia_bpm: float = 130.0,
                 rr_irregularity: float = 0.35,
                 alarm_hold_s: float = 10.0,
                 payload_bytes: int = 18,
                 name: str = "adaptive",
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, scheduler, asic, adc, mac, calibration,
                         channels, sampling_hz, name=name, trace=trace)
        if bradycardia_bpm >= tachycardia_bpm:
            raise ValueError(
                f"bradycardia bound {bradycardia_bpm} must be below "
                f"tachycardia bound {tachycardia_bpm}")
        if alarm_hold_s <= 0:
            raise ValueError(f"alarm_hold_s must be positive: "
                             f"{alarm_hold_s}")
        self.bradycardia_bpm = bradycardia_bpm
        self.tachycardia_bpm = tachycardia_bpm
        self.rr_irregularity = rr_irregularity
        self.alarm_hold_ticks = seconds(alarm_hold_s)
        self.payload_bytes = payload_bytes
        self._capacity = codes_per_payload(payload_bytes)

        # Beat detection runs on the primary channel only (MONITOR
        # decisions need one rhythm estimate, not one per lead).
        self._detector = RPeakDetector(sampling_hz)
        self._rr_history: Deque[float] = deque(maxlen=8)
        self._last_beat_s: Optional[float] = None
        self._pending_reports: Deque[Dict] = deque(maxlen=16)
        self._stream_buffer: Deque[int] = deque(maxlen=16 * self._capacity)

        self.mode = CardiacMode.MONITOR
        self._alarm_until = 0
        self.mode_changes: List[Tuple[float, CardiacMode, str]] = []
        self.beats_detected = 0
        self.alarms_raised = 0

    # ------------------------------------------------------------------
    def extra_cycles_per_channel(self) -> int:
        # The detector runs once per sample vector (primary channel
        # only); the base class multiplies by the channel count, so
        # divide the algorithm cost back out to charge it once.
        return self._cal.mcu_costs.rpeak_algorithm // len(self.channels)

    # ------------------------------------------------------------------
    # Rhythm assessment
    # ------------------------------------------------------------------
    def _assess_rhythm(self) -> Optional[str]:
        """A reason string when the rhythm is abnormal, else None."""
        if len(self._rr_history) < 3:
            return None
        recent = list(self._rr_history)
        mean_rr = sum(recent) / len(recent)
        rate = 60.0 / mean_rr
        if rate < self.bradycardia_bpm:
            return f"bradycardia ({rate:.0f} bpm)"
        if rate > self.tachycardia_bpm:
            return f"tachycardia ({rate:.0f} bpm)"
        for previous, current in zip(recent, recent[1:]):
            if abs(current - previous) / previous > self.rr_irregularity:
                return (f"irregular RR ({previous * 1e3:.0f} -> "
                        f"{current * 1e3:.0f} ms)")
        return None

    def _enter_alarm(self, reason: str) -> None:
        self._alarm_until = self._sim.now + self.alarm_hold_ticks
        if self.mode is CardiacMode.ALARM:
            return
        self.mode = CardiacMode.ALARM
        self.alarms_raised += 1
        self.mode_changes.append(
            (to_seconds(self._sim.now), CardiacMode.ALARM, reason))
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "alarm", reason)

    def _maybe_recover(self) -> None:
        if self.mode is CardiacMode.ALARM \
                and self._sim.now >= self._alarm_until:
            self.mode = CardiacMode.MONITOR
            self.mode_changes.append(
                (to_seconds(self._sim.now), CardiacMode.MONITOR,
                 "rhythm normalised"))
            self._stream_buffer.clear()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def handle_samples(self, codes: Tuple[int, ...]) -> None:
        now_s = to_seconds(self._sim.now)
        lag = self._detector.process(float(codes[0]))
        if lag > 0:
            self.beats_detected += 1
            beat_s = now_s - lag / self.sampling_hz
            if self._last_beat_s is not None:
                self._rr_history.append(beat_s - self._last_beat_s)
            self._last_beat_s = beat_s
            self._pending_reports.append({
                "kind": "beat",
                "lag_samples": lag,
                "detected_at_s": now_s,
            })
            reason = self._assess_rhythm()
            if reason is not None:
                self._enter_alarm(reason)
        self._maybe_recover()
        if self.mode is CardiacMode.ALARM:
            for code in codes:
                self._stream_buffer.append(code)

    # ------------------------------------------------------------------
    # MAC payload
    # ------------------------------------------------------------------
    def next_payload(self) -> Optional[AppPayload]:
        if self.mode is CardiacMode.ALARM:
            take = min(len(self._stream_buffer), self._capacity)
            codes = [self._stream_buffer.popleft() for _ in range(take)]
            return (self.payload_bytes, {
                "kind": "alarm_stream",
                "codes": codes,
                "pending_beats": len(self._pending_reports),
            })
        if self._pending_reports:
            return (BEAT_PAYLOAD_BYTES, self._pending_reports.popleft())
        return None

    # ------------------------------------------------------------------
    @property
    def in_alarm(self) -> bool:
        """Whether the node is currently streaming raw waveform."""
        return self.mode is CardiacMode.ALARM

    def alarm_time_fraction(self, horizon_s: float) -> float:
        """Share of ``horizon_s`` spent in ALARM mode (from the mode log,
        assuming the app started in MONITOR at t=0)."""
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive: {horizon_s}")
        total = 0.0
        alarm_since: Optional[float] = None
        for at_s, mode, _ in self.mode_changes:
            if mode is CardiacMode.ALARM and alarm_since is None:
                alarm_since = at_s
            elif mode is CardiacMode.MONITOR and alarm_since is not None:
                total += at_s - alarm_since
                alarm_since = None
        if alarm_since is not None:
            total += horizon_s - alarm_since
        return min(1.0, total / horizon_s)


__all__ = ["CardiacMode", "AdaptiveCardiacApp"]
