"""Microbenchmarks of the simulation substrate itself.

Not a paper artefact — these track the cost of the discrete-event
kernel and of a full BAN simulation second, so regressions in simulator
performance are caught alongside accuracy.
"""

from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.sim.kernel import Simulator


def test_kernel_event_throughput(benchmark):
    """Dispatch 100k self-rescheduling events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.after(10, tick)

        sim.after(10, tick)
        sim.run_until(10 * 100_000 + 1)
        return count[0]

    assert benchmark(run) == 100_000


def test_ban_simulation_rate(benchmark):
    """Simulated seconds per wall second for the densest table row
    (5 nodes, 30 ms cycle, 205 Hz streaming)."""

    def run():
        config = BanScenarioConfig(mac="static", app="ecg_streaming",
                                   num_nodes=5, cycle_ms=30.0,
                                   sampling_hz=205.0, measure_s=5.0)
        return BanScenario(config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1,
                                warmup_rounds=0)
    assert result.node("node1").radio_mj > 0
