"""Tests for parallel linting (``lint_paths(..., jobs=N)``).

The contract is byte-identity: a pool run must produce exactly the
findings of a sequential run — same rules, same locations, same
messages, same suppression state — with only the timing extras
allowed to differ.  That holds on any machine; the wall-clock benefit
is a multi-core property, so the speedup assertion is skipped on
single-core hosts where fanning out processes can only add overhead.
"""

import dataclasses
import os
import pathlib
import time

import pytest

from repro.lint import LintConfig, lint_paths, load_config
from repro.lint.cli import main as lint_main
from repro.lint.report import finding_to_dict, render_json

ROOT = pathlib.Path(__file__).resolve().parent.parent

FILES = {
    "rng.py": "import random\nVALUE = random.random()\n",
    "waived.py": ("import random\nV = random.random()"
                  "  # lint: allow(DET001): fixture\n"),
    "clean.py": "X = 1\n",
    "leak.py": (ROOT / "tests" / "fixtures" / "lint"
                / "leaked_radio.py").read_text(encoding="utf-8"),
}


@pytest.fixture()
def tree(tmp_path):
    for name, source in FILES.items():
        (tmp_path / name).write_text(source, encoding="utf-8")
    return tmp_path


def _dicts(report):
    return [finding_to_dict(f) for f in report.findings]


class TestByteIdentity:
    def test_findings_identical_over_fixture_tree(self, tree):
        seq = lint_paths([tree], LintConfig())
        par = lint_paths([tree], LintConfig(), jobs=2)
        assert seq.findings  # the tree is seeded with real findings
        assert _dicts(seq) == _dicts(par)
        assert seq.ok == par.ok
        assert seq.files_scanned == par.files_scanned

    def test_findings_identical_over_lint_package(self):
        target = ROOT / "src" / "repro" / "lint"
        config = load_config([target])
        seq = lint_paths([target], config)
        par = lint_paths([target], config, jobs=3)
        assert _dicts(seq) == _dicts(par)

    def test_json_reports_differ_only_in_timings(self, tree):
        import json
        seq = json.loads(render_json(lint_paths([tree], LintConfig())))
        par = json.loads(render_json(lint_paths([tree], LintConfig(),
                                                jobs=2)))
        seq["analyses"].pop("timings")
        par["analyses"].pop("timings")
        assert seq == par

    def test_rule_selection_respected_in_pool(self, tree):
        config = dataclasses.replace(LintConfig(),
                                     select=("LIF001", "LIF004"))
        seq = lint_paths([tree], config)
        par = lint_paths([tree], config, jobs=2)
        assert _dicts(seq) == _dicts(par)
        assert {f.rule for f in par.findings} <= {"LIF001", "LIF004"}


class TestTimingExtras:
    def test_pool_run_reports_jobs_and_wall(self, tree):
        par = lint_paths([tree], LintConfig(), jobs=2)
        timings = par.extras["timings"]
        assert timings["jobs"] == 2
        assert timings["pool_wall"] > 0
        # The pool tasks mirror the sequential analysis names.
        for name in ("interproc", "units", "statemachine", "rngprov"):
            assert name in timings

    def test_sequential_run_has_no_pool_keys(self, tree):
        seq = lint_paths([tree], LintConfig())
        assert "jobs" not in seq.extras["timings"]
        assert "pool_wall" not in seq.extras["timings"]


class TestCacheInteraction:
    def test_pool_run_populates_cache_like_sequential(self, tree,
                                                      tmp_path):
        from repro.lint.cache import LintCache
        config = LintConfig()
        cache_dir = tmp_path / "cache"
        cache = LintCache(cache_dir, config)
        first = lint_paths([tree], config, cache=cache, jobs=2)
        warm = LintCache(cache_dir, config)
        second = lint_paths([tree], config, cache=warm)
        assert _dicts(first) == _dicts(second)
        stats = second.extras["cache"]
        assert stats["file_hits"] == first.files_scanned


class TestCli:
    def test_jobs_flag_runs_and_gates(self, tree, capsys):
        assert lint_main([str(tree), "--jobs", "2"]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_jobs_zero_is_usage_error(self, tree, capsys):
        assert lint_main([str(tree), "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="speedup is a multi-core property; on one "
                           "core a process pool only adds overhead")
def test_parallel_is_faster_cold():
    """On a multi-core host, a cold ``--jobs 4`` run beats sequential:
    the tree analyses overlap instead of queueing."""
    target = ROOT / "src"
    config = load_config([target])
    started = time.perf_counter()
    seq = lint_paths([target], config)
    seq_wall = time.perf_counter() - started
    started = time.perf_counter()
    par = lint_paths([target], config, jobs=4)
    par_wall = time.perf_counter() - started
    assert _dicts(seq) == _dicts(par)
    assert par_wall < seq_wall, (
        f"parallel {par_wall:.2f}s not faster than "
        f"sequential {seq_wall:.2f}s")
