"""Property-based tests (hypothesis) for core data structures and
invariants: the ledger, the event queue, 12-bit packing, slot schedules,
sync policies and the ECG generator."""

import heapq

from hypothesis import given, settings, strategies as st

from repro.apps.ecg_streaming import pack_codes, unpack_codes
from repro.core.ledger import PowerStateLedger
from repro.core.states import PowerState, PowerStateTable
from repro.mac.slots import (
    SlotSchedule,
    dynamic_cycle_ticks,
    static_slot_offset,
)
from repro.mac.sync import CycleProportionalLead, DriftTrackingLead
from repro.sim.events import EVT_LABEL, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.simtime import bits_duration
from repro.signals.ecg import SyntheticEcg

codes = st.lists(st.integers(min_value=0, max_value=0xFFF),
                 min_size=0, max_size=64)


class TestPackingProperties:
    @given(codes)
    def test_pack_unpack_roundtrip(self, values):
        assert unpack_codes(pack_codes(values), len(values)) == values

    @given(codes)
    def test_packed_size_is_ceil_12bit(self, values):
        packed = pack_codes(values)
        expected = (len(values) // 2) * 3 + (2 if len(values) % 2 else 0)
        assert len(packed) == expected

    @given(codes, codes)
    def test_packing_is_prefix_stable(self, first, second):
        """Packing a concatenation starts with the packing of the even-
        length prefix."""
        if len(first) % 2 == 0:
            combined = pack_codes(first + second)
            assert combined[:len(pack_codes(first))] == pack_codes(first)


class TestLedgerProperties:
    states = st.sampled_from(["a", "b", "c"])
    schedule = st.lists(
        st.tuples(st.integers(min_value=1, max_value=10_000), states),
        min_size=0, max_size=30)

    @given(schedule)
    @settings(max_examples=60)
    def test_time_partitions_exactly(self, steps):
        """Whatever the transition sequence, booked time sums exactly to
        the horizon (integer ticks: no float drift)."""
        sim = Simulator()
        table = PowerStateTable([PowerState("a", 1e-3),
                                 PowerState("b", 2e-3),
                                 PowerState("c", 0.0)])
        ledger = PowerStateLedger(sim, "x", table, 2.8, "a")
        t = 0
        for delay, state in steps:
            t += delay
            sim.at(t, lambda s=state: ledger.transition(s))
        horizon = t + 17
        sim.run_until(horizon)
        assert ledger.ticks_in() == horizon

    @given(schedule)
    @settings(max_examples=60)
    def test_energy_additive_over_states(self, steps):
        sim = Simulator()
        table = PowerStateTable([PowerState("a", 1e-3),
                                 PowerState("b", 2e-3),
                                 PowerState("c", 5e-3)])
        ledger = PowerStateLedger(sim, "x", table, 2.8, "a")
        t = 0
        for delay, state in steps:
            t += delay
            sim.at(t, lambda s=state: ledger.transition(s))
        sim.run_until(t + 5)
        total = ledger.energy_j()
        by_state = sum(ledger.energy_by_state().values())
        assert abs(total - by_state) < 1e-15


class TestEventQueueProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=0, max_size=200))
    def test_pop_order_matches_stable_sort(self, times):
        queue = EventQueue()
        for index, time in enumerate(times):
            queue.push(time, lambda: None, label=str(index))
        expected = [str(i) for _, i in
                    sorted((t, i) for i, t in enumerate(times))]
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event[EVT_LABEL])
        assert popped == expected
        # sanity: heapq agrees with sorted on the keyed pairs
        keyed = [(t, i) for i, t in enumerate(times)]
        heapq.heapify(keyed)
        assert sorted(keyed) == sorted((t, i)
                                       for i, t in enumerate(times))


class TestSlotProperties:
    @given(st.integers(min_value=1, max_value=32), st.data())
    def test_assignments_are_bijective(self, num_slots, data):
        schedule = SlotSchedule(num_slots)
        nodes = [f"n{i}" for i in range(num_slots)]
        for node in nodes:
            free = schedule.free_slots()
            slot = data.draw(st.sampled_from(free))
            schedule.assign(slot, node)
        owners = [schedule.owner_of(s)
                  for s in range(1, num_slots + 1)]
        assert sorted(owners) == sorted(nodes)
        assert schedule.is_full

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=1000))
    def test_static_offsets_ordered_and_within_cycle(self, slots, cycle_ms):
        cycle = cycle_ms * 1_000_000
        offsets = [static_slot_offset(cycle, slots, s)
                   for s in range(1, slots + 1)]
        assert offsets == sorted(offsets)
        assert all(0 < o < cycle for o in offsets)

    @given(st.integers(min_value=0, max_value=100))
    def test_dynamic_cycle_linear(self, nodes):
        slot = 10_000_000
        assert dynamic_cycle_ticks(slot, nodes) == (nodes + 1) * slot


class TestSyncProperties:
    @given(st.integers(min_value=1, max_value=10**9),
           st.floats(min_value=0.0, max_value=0.1))
    def test_cycle_proportional_monotone(self, cycle, coeff):
        policy = CycleProportionalLead(1000, coeff)
        assert policy.lead_ticks(cycle, cycle) \
            <= policy.lead_ticks(2 * cycle, 2 * cycle)

    @given(st.integers(min_value=1, max_value=10**9),
           st.integers(min_value=1, max_value=10**10))
    def test_drift_guard_covers_drift(self, cycle, elapsed):
        """The guard must always be at least the worst-case clock
        divergence it protects against."""
        policy = DriftTrackingLead(tolerance_ppm=50.0, margin_ticks=0)
        drift = 2 * 50e-6 * elapsed
        assert policy.lead_ticks(cycle, elapsed) >= drift - 1


class TestSignalProperties:
    @given(st.floats(min_value=30.0, max_value=200.0),
           st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=30)
    def test_peak_count_matches_rate(self, bpm, horizon):
        ecg = SyntheticEcg(heart_rate_bpm=bpm, first_beat_s=0.0)
        peaks = ecg.r_peak_times(horizon)
        expected = int(horizon / (60.0 / bpm)) + 1
        assert abs(len(peaks) - expected) <= 1

    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=1e5, max_value=2e6))
    def test_airtime_linear_in_bits(self, bits, rate):
        single = bits_duration(1, rate)
        assert abs(bits_duration(bits, rate) - bits * single) \
            <= bits  # rounding at most 1 tick per bit
