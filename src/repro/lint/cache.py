"""Content-hash incremental caching for lint runs.

The analysis suite keeps growing (PRs 4–5 added four flow-sensitive
passes; this PR adds the interprocedural call-graph/effect layer), so a
full cold run is no longer free.  This cache keeps CI and local lint
time flat:

* **Per-file rule results** are keyed by the SHA-256 of the file's
  source text.  Per-file rules are pure functions of
  ``(source, config)``, so an unchanged file's findings are replayed
  without re-running a single rule.
* **Tree-analysis results** (units, state machines, RNG provenance,
  the interprocedural passes) see every file at once, so they are
  keyed by the digest of *all* file hashes: any edit anywhere re-runs
  them, an untouched tree replays findings and report extras verbatim.
* Both keys are salted with the lint package's own source digest and
  the resolved configuration, so editing a rule or ``pyproject.toml``
  invalidates everything — correctness over reuse, exactly like the
  result cache's code-version salt.

Suppression resolution (waivers, SUP001/SUP002) is *not* cached: it is
cheap and must see the current source lines.

The cache also powers ``--changed-only``: the engine asks which files
had a fresh per-file hit and filters the report down to the rest — the
files the current change actually touched.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .config import LintConfig
from .engine import Finding

#: Bump to invalidate existing cache files on format changes.
CACHE_SCHEMA = 1

_SALT_CACHE: Dict[str, str] = {}


def _lint_code_salt() -> str:
    """Digest of the lint package's own source (memoised per process)."""
    cached = _SALT_CACHE.get("salt")
    if cached is not None:
        return cached
    package = Path(__file__).resolve().parent
    digest = hashlib.sha256(f"schema={CACHE_SCHEMA};".encode())
    for path in sorted(package.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    salt = digest.hexdigest()
    _SALT_CACHE["salt"] = salt
    return salt


def config_digest(config: LintConfig) -> str:
    """Stable digest of the resolved configuration.

    ``LintConfig`` is a frozen dataclass of strings and string tuples,
    so its ``repr`` is canonical.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()


def source_digest(source: str) -> str:
    """Content hash a per-file entry is keyed by."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _finding_to_entry(finding: Finding) -> Dict[str, object]:
    return {"rule": finding.rule, "path": finding.path,
            "line": finding.line, "col": finding.col,
            "message": finding.message}


def _entry_to_finding(entry: Dict[str, object]) -> Finding:
    return Finding(rule=str(entry["rule"]), path=str(entry["path"]),
                   line=int(entry["line"]),  # type: ignore[arg-type]
                   col=int(entry["col"]),  # type: ignore[arg-type]
                   message=str(entry["message"]))


class LintCache:
    """On-disk lint result cache for one configuration.

    Load on construction, mutate through ``put_*``, persist with
    :meth:`save`.  A salt mismatch (lint code or configuration changed)
    silently starts fresh.
    """

    def __init__(self, directory: Path, config: LintConfig) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "lint-cache.json"
        self.salt = f"{_lint_code_salt()}:{config_digest(config)}"
        self.file_hits = 0
        self.file_misses = 0
        self.tree_hit = False
        self._files: Dict[str, Dict[str, object]] = {}
        self._tree: Optional[Dict[str, object]] = None
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("salt") != self.salt:
            return  # cold: lint code, schema or config changed
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files
        tree = data.get("tree")
        if isinstance(tree, dict):
            self._tree = tree

    # -- per-file rule results ------------------------------------------

    def get_file(self, path: str,
                 digest: str) -> Optional[List[Finding]]:
        """Cached per-file findings, or None on miss/stale content."""
        entry = self._files.get(path)
        if entry is None or entry.get("digest") != digest:
            self.file_misses += 1
            return None
        self.file_hits += 1
        return [_entry_to_finding(item)  # type: ignore[arg-type]
                for item in entry.get("findings", ())]

    def put_file(self, path: str, digest: str,
                 findings: Sequence[Finding]) -> None:
        self._files[path] = {
            "digest": digest,
            "findings": [_finding_to_entry(f) for f in findings],
        }

    # -- whole-tree analysis results ------------------------------------

    @staticmethod
    def tree_key(digests: Sequence[Tuple[str, str]]) -> str:
        """Key over the full ``(path, content digest)`` context set."""
        hasher = hashlib.sha256()
        for path, digest in sorted(digests):
            hasher.update(f"{path}={digest};".encode())
        return hasher.hexdigest()

    def get_tree(self, key: str
                 ) -> Optional[Tuple[List[Finding], Dict[str, object]]]:
        entry = self._tree
        if entry is None or entry.get("key") != key:
            return None
        self.tree_hit = True
        findings = [_entry_to_finding(item)  # type: ignore[arg-type]
                    for item in entry.get("findings", ())]
        extras = entry.get("extras")
        return findings, dict(extras) if isinstance(extras, dict) else {}

    def put_tree(self, key: str, findings: Sequence[Finding],
                 extras: Dict[str, object]) -> None:
        try:
            encoded = json.loads(json.dumps(extras))
        except (TypeError, ValueError):
            encoded = {}  # non-serialisable extras: do not cache them
        self._tree = {
            "key": key,
            "findings": [_finding_to_entry(f) for f in findings],
            "extras": encoded,
        }

    # -- persistence -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Hit/miss counters for the report extras."""
        return {"file_hits": self.file_hits,
                "file_misses": self.file_misses,
                "tree_hit": self.tree_hit}

    def save(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        document = {"schema": CACHE_SCHEMA, "salt": self.salt,
                    "files": self._files, "tree": self._tree}
        self.path.write_text(json.dumps(document), encoding="utf-8")


__all__ = ["CACHE_SCHEMA", "LintCache", "config_digest",
           "source_digest"]
