"""Application base class: periodic multi-channel sampling.

Both case-study applications (Section 5) share the same skeleton: a
TinyOS timer fires at the sampling frequency, a task acquires one ADC
sample per monitored channel, and the application decides what (if
anything) to hand the MAC at its next slot.  The skeleton lives here;
subclasses implement :meth:`handle_samples` (what to do with a sample
vector) and :meth:`next_payload` (what to transmit).

MCU cost: each timer fire posts one task costing
``channels * sample_acquisition`` cycles plus whatever
:meth:`extra_cycles_per_channel` adds (the Rpeak detector's algorithm
cost) — exactly the calibrated per-sample decomposition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from ..core.calibration import ModelCalibration
from ..hw.adc import Adc12
from ..hw.asic import BiopotentialAsic
from ..mac.base import AppPayload, NodeMac
from ..sim.kernel import Simulator
from ..sim.simtime import TICKS_PER_SECOND
from ..sim.trace import TraceRecorder
from ..tinyos.components import Component
from ..tinyos.scheduler import TaskScheduler
from ..tinyos.timers import VirtualTimer

if TYPE_CHECKING:
    from ..obs.spans import SpanTracer


class SamplingApplication(Component):
    """Periodic ADC sampling over a set of ASIC channels.

    Args:
        sim: simulation kernel.
        scheduler: the node's TinyOS scheduler (MCU cost sink).
        asic: the sensing front-end.
        adc: the MCU's ADC.
        mac: the node's MAC; the app registers as its payload provider.
        calibration: model constants.
        channels: ASIC channel indices to sample each period.
        sampling_hz: per-channel sampling frequency.
    """

    def __init__(self, sim: Simulator, scheduler: TaskScheduler,
                 asic: BiopotentialAsic, adc: Adc12, mac: NodeMac,
                 calibration: ModelCalibration,
                 channels: Sequence[int], sampling_hz: float,
                 name: str = "app",
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, name, trace)
        if not channels:
            raise ValueError(f"{name}: need at least one channel")
        if sampling_hz <= 0:
            raise ValueError(
                f"{name}: sampling rate must be positive: {sampling_hz}")
        self._scheduler = scheduler
        self._asic = asic
        self._adc = adc
        self._mac = mac
        self._cal = calibration
        self.channels = tuple(channels)
        self.sampling_hz = sampling_hz
        self._timer = VirtualTimer(sim, self._sample_tick,
                                   name=f"{name}.sample_timer")
        self._samples_taken = 0
        self._label_sample = f"{name}.sample"
        # Per-tick task cost: channel count and calibration are fixed, so
        # the timer handler books a precomputed constant.
        self._tick_cost = len(self.channels) * (
            calibration.mcu_costs.sample_acquisition
            + self.extra_cycles_per_channel())
        #: Optional causal-span tracer (:mod:`repro.obs.spans`), with
        #: the owning node's id (set by SensorNode.attach_spans).
        self.spans: Optional["SpanTracer"] = None
        self.spans_node: str = ""
        mac.payload_provider = self.next_payload

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def handle_samples(self, codes: Tuple[int, ...]) -> None:
        """Consume one sample vector (one ADC code per channel)."""
        raise NotImplementedError

    def next_payload(self) -> Optional[AppPayload]:
        """What the MAC should transmit in the upcoming slot, if anything."""
        raise NotImplementedError

    def extra_cycles_per_channel(self) -> int:
        """Additional per-channel-sample MCU cost (e.g. beat detection)."""
        return 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        period = round(TICKS_PER_SECOND / self.sampling_hz)
        self._timer.start_periodic(period)

    def on_stop(self) -> None:
        self._timer.stop()

    @property
    def samples_taken(self) -> int:
        """Sample vectors acquired so far (one per timer fire)."""
        return self._samples_taken

    @property
    def sample_period_ticks(self) -> int:
        """The sampling period in ticks."""
        return round(TICKS_PER_SECOND / self.sampling_hz)

    def next_wake_hint(self) -> Optional[int]:
        """Absolute time of the next sampling tick (power-policy hint)."""
        return self._timer.next_fire_ticks

    # ------------------------------------------------------------------
    # Sampling machinery
    # ------------------------------------------------------------------
    def _sample_tick(self) -> None:
        self._scheduler.post(self._acquire, self._tick_cost,
                             label=self._label_sample)

    def _acquire(self) -> None:
        if self.spans is not None:
            self.spans.note_sample(self.spans_node, self._sim.now,
                                   self._tick_cost)
        read_channel = self._asic.read_channel
        convert = self._adc.convert
        codes = tuple([convert(read_channel(c)) for c in self.channels])
        self._samples_taken += 1
        self.handle_samples(codes)


__all__ = ["SamplingApplication"]
