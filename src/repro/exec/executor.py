"""Process-parallel execution of independent BAN scenarios.

Every table row, sweep point, replication seed and multi-BAN parameter
set is an independent :class:`~repro.net.scenario.BanScenarioConfig`
evaluated by a deterministic simulator, which makes batch evaluation
embarrassingly parallel.  :class:`ScenarioExecutor` fans a batch out
over a :class:`concurrent.futures.ProcessPoolExecutor` and returns
results **in submission order**, so parallel output is bit-identical to
the sequential path — determinism is the contract, parallelism only
changes wall-clock time.

Fallback rules (all silent, all order-preserving):

* ``jobs=1`` runs everything in-process — same code path the worker
  runs, convenient for debugging and profiling.
* Configs that cannot be pickled (e.g. a lambda
  ``sync_policy_factory``) are detected up front and evaluated
  in-process; the rest of the batch still uses the pool.
* If the platform cannot start worker processes at all, the whole
  batch falls back in-process.

An optional :class:`~repro.exec.cache.ResultCache` short-circuits
configs whose results are already on disk; only the misses are
dispatched to workers.

Observability: constructed with a
:class:`~repro.obs.metrics.MetricsRegistry` (and optionally a
:class:`~repro.obs.profiler.SimulationProfiler`), the executor has each
worker build a private registry, run its scenario instrumented, and
ship plain-data snapshots back; the main process merges them in
submission order.  Counters merge additively, so ``jobs=N`` reports the
same MAC/radio/MCU totals as a sequential run.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from time import perf_counter
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .cache import ResultCache


def _run_config_worker(config: Any) -> Any:
    """Build and run one scenario (module-level: must be picklable)."""
    from ..net.scenario import BanScenario
    return BanScenario(config).run()


def _run_config_worker_obs(config: Any, profile: bool = False
                           ) -> Tuple[Any, dict, Optional[dict]]:
    """Run one scenario instrumented; ship snapshots, not objects.

    Returns ``(result, metrics_snapshot, profiler_snapshot)``.  The
    worker builds a private registry so merging in the parent is a
    pure, order-independent fold over plain dicts.
    """
    from ..net.scenario import BanScenario
    from ..obs import (GLOBAL, MetricsRegistry, SimulationProfiler,
                       collect_scenario_metrics, collect_simulator_metrics)
    registry = MetricsRegistry()
    scenario = BanScenario(config)
    scenario.sim.metrics = registry
    profiler = SimulationProfiler() if profile else None
    if profiler is not None:
        scenario.sim.profiler = profiler
    started = perf_counter()
    result = scenario.run()
    wall_s = perf_counter() - started
    collect_scenario_metrics(scenario, registry)
    collect_simulator_metrics(scenario.sim, registry)
    registry.histogram("exec", GLOBAL, "scenario_wall_s").observe(wall_s)
    return (result, registry.snapshot(),
            profiler.snapshot() if profiler is not None else None)


def default_jobs() -> int:
    """Worker count used for ``jobs=None``: the machine's CPU count."""
    return os.cpu_count() or 1


def _picklable(value: Any) -> bool:
    try:
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except (pickle.PicklingError, TypeError, AttributeError):
        return False


class ScenarioExecutor:
    """Runs batches of independent scenario configs, optionally parallel.

    Args:
        jobs: worker process count.  ``1`` (the default) executes
            in-process; ``None`` uses :func:`default_jobs`.
        cache: optional :class:`ResultCache` consulted before running
            and updated after; its ``stats`` field accumulates
            hit/miss counts across batches.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, :meth:`run_configs` runs scenarios instrumented
            and merges every worker's snapshot here.
        profiler: optional
            :class:`~repro.obs.profiler.SimulationProfiler` merging the
            per-scenario callback timings (implies instrumented runs).
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ResultCache] = None,
                 metrics=None, profiler=None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = default_jobs() if jobs is None else jobs
        self.cache = cache
        self.metrics = metrics
        self.profiler = profiler

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            ) -> List[Any]:
        """Apply picklable ``fn`` to each item; results in item order.

        The generic machinery behind :meth:`run_configs`, exposed for
        batch entry points that need a custom per-item function (e.g.
        multi-BAN runs).  Unpicklable items are evaluated in-process;
        so is everything when ``jobs == 1`` or the pool cannot start.
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]

        skip = {index for index, item in enumerate(items)
                if not _picklable(item)}
        if not _picklable(fn):
            skip = set(range(len(items)))
        pooled = [index for index in range(len(items))
                  if index not in skip]
        results: List[Any] = [None] * len(items)
        if pooled:
            try:
                workers = min(self.jobs, len(pooled))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [(index, pool.submit(fn, items[index]))
                               for index in pooled]
                    for index, future in futures:
                        results[index] = future.result()
            except (OSError, BrokenProcessPool, pickle.PicklingError):
                # Pool unavailable on this platform: evaluate the
                # pooled share where we are (determinism makes any
                # partially computed results safe to recompute).
                skip.update(pooled)
        for index in sorted(skip):
            results[index] = fn(items[index])
        return results

    def run_configs(self, configs: Sequence[Any]) -> List[Any]:
        """Evaluate each config; results in submission order.

        Cached results are returned without running; only misses are
        dispatched (in their original relative order, so sequential
        and parallel runs stay bit-identical).  With ``metrics`` (or
        ``profiler``) set, every fresh run is instrumented and its
        snapshot merged — only the scenario *result* is cached, so
        cache hits contribute no scenario metrics.
        """
        configs = list(configs)
        observed = self.metrics is not None or self.profiler is not None
        worker: Callable[[Any], Any] = _run_config_worker
        if observed:
            worker = partial(_run_config_worker_obs,
                             profile=self.profiler is not None)
        cache = self.cache
        batch_started = perf_counter()

        results: List[Any] = [None] * len(configs)
        miss_indices: List[int] = []
        if cache is None:
            miss_indices = list(range(len(configs)))
        else:
            for index, config in enumerate(configs):
                cached = cache.get(config)
                if cached is not None:
                    results[index] = cached
                else:
                    miss_indices.append(index)
        if miss_indices:
            fresh = self.map(worker,
                             [configs[i] for i in miss_indices])
            if observed:
                fresh = [self._absorb_observed(packed)
                         for packed in fresh]
            for index, result in zip(miss_indices, fresh):
                results[index] = result
                if cache is not None:
                    cache.put(configs[index], result)
        if observed:
            self._record_batch_metrics(len(configs), len(miss_indices),
                                       perf_counter() - batch_started)
        return results

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------
    def _absorb_observed(self, packed: Tuple[Any, dict, Optional[dict]]
                         ) -> Any:
        """Merge one worker's snapshots; return the bare result."""
        result, metrics_snapshot, profiler_snapshot = packed
        if self.metrics is not None:
            self.metrics.merge_snapshot(metrics_snapshot)
        if self.profiler is not None and profiler_snapshot is not None:
            self.profiler.merge_snapshot(profiler_snapshot)
        return result

    def _record_batch_metrics(self, total: int, fresh: int,
                              batch_wall_s: float) -> None:
        """Batch-level figures: size, pool width, worker utilisation."""
        if self.metrics is None:
            return
        from ..obs import GLOBAL
        registry = self.metrics
        registry.counter("exec", GLOBAL, "scenarios_run").inc(fresh)
        registry.counter("exec", GLOBAL,
                         "scenarios_cached").inc(total - fresh)
        registry.gauge("exec", GLOBAL, "workers").set(float(self.jobs))
        registry.histogram("exec", GLOBAL,
                           "batch_wall_s").observe(batch_wall_s)
        busy = registry.histogram("exec", GLOBAL, "scenario_wall_s")
        width = min(self.jobs, fresh) if fresh else 0
        if width and batch_wall_s > 0.0:
            registry.gauge("exec", GLOBAL, "worker_utilization").set(
                min(1.0, busy.total / (batch_wall_s * width)))


def run_configs(configs: Sequence[Any], jobs: Optional[int] = 1,
                cache: Optional[ResultCache] = None) -> List[Any]:
    """One-call convenience: ``ScenarioExecutor(jobs, cache).run_configs``."""
    return ScenarioExecutor(jobs=jobs, cache=cache).run_configs(configs)


__all__ = ["ScenarioExecutor", "default_jobs", "run_configs"]
