"""Discrete-event simulation kernel (the TOSSIM substrate).

This package provides the event-driven core every other layer is built on:

* :mod:`repro.sim.simtime` — integer-nanosecond time base and unit helpers,
* :mod:`repro.sim.events` — events and the stable-priority event queue,
* :mod:`repro.sim.kernel` — the :class:`Simulator`,
* :mod:`repro.sim.rng` — deterministic per-purpose random streams,
* :mod:`repro.sim.trace` — opt-in event tracing.
"""

from .events import (
    Event,
    EventEntry,
    EventQueue,
    SimulationError,
    cancel_event,
    event_cancelled,
)
from .kernel import Simulator
from .rng import RngRegistry
from .simtime import (
    TICKS_PER_MS,
    TICKS_PER_SECOND,
    TICKS_PER_US,
    bits_duration,
    bytes_duration,
    format_time,
    microseconds,
    milliseconds,
    nanoseconds,
    seconds,
    to_microseconds,
    to_milliseconds,
    to_seconds,
)
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventEntry",
    "EventQueue",
    "cancel_event",
    "event_cancelled",
    "SimulationError",
    "Simulator",
    "RngRegistry",
    "TraceRecord",
    "TraceRecorder",
    "TICKS_PER_MS",
    "TICKS_PER_SECOND",
    "TICKS_PER_US",
    "bits_duration",
    "bytes_duration",
    "format_time",
    "microseconds",
    "milliseconds",
    "nanoseconds",
    "seconds",
    "to_microseconds",
    "to_milliseconds",
    "to_seconds",
]
