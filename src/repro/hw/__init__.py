"""Hardware models of the IMEC BAN sensor node (Section 3.1).

* :mod:`repro.hw.mcu` — TI MSP430F149 two-state power model,
* :mod:`repro.hw.radio` — Nordic nRF2401 with ShockBurst, hardware CRC
  and address filtering,
* :mod:`repro.hw.asic` — 25-channel biopotential front-end,
* :mod:`repro.hw.adc` — on-chip 12-bit ADC transfer function,
* :mod:`repro.hw.battery` — lifetime projection,
* :mod:`repro.hw.frames` — over-the-air frame representation.
"""

from .adc import Adc12
from .asic import ECG_CHANNEL, NUM_CHANNELS, BiopotentialAsic
from .battery import CR2477, LIPO_160, Battery
from .frames import BROADCAST, Frame, FrameKind
from .scavenger import (
    ConstantHarvest,
    DiurnalSolarHarvest,
    HarvestingBudget,
    HarvestSource,
    MotionHarvest,
    harvesting_budget,
)
from .mcu import Msp430
from .radio import Nrf2401, RadioError, TxOutcome

__all__ = [
    "Adc12",
    "ECG_CHANNEL",
    "NUM_CHANNELS",
    "BiopotentialAsic",
    "CR2477",
    "LIPO_160",
    "Battery",
    "BROADCAST",
    "Frame",
    "FrameKind",
    "ConstantHarvest",
    "DiurnalSolarHarvest",
    "HarvestingBudget",
    "HarvestSource",
    "MotionHarvest",
    "harvesting_budget",
    "Msp430",
    "Nrf2401",
    "RadioError",
    "TxOutcome",
]
