"""Structured per-scenario failure records for batch execution.

A batch of independent scenarios should degrade independently: one
raising config must not discard its siblings' results.  When the
executor runs with ``isolate_errors=True``, a failing item yields an
:class:`ErrorResult` in its submission-order slot instead of aborting
the batch.  The record carries everything needed to triage the failure
offline (exception type, message, traceback text, attempt count)
without holding live objects, so it is picklable and JSON-exportable.

Equality deliberately ignores the traceback text: a failure isolated in
a worker process and the same failure isolated in-process produce equal
records, which is what lets tests assert ``--jobs 1`` and ``--jobs N``
batches return identical outputs.
"""

from __future__ import annotations

import dataclasses
import reprlib
import traceback as _traceback
from typing import Any, Dict, List, Sequence


class ScenarioTimeoutError(RuntimeError):
    """A pooled scenario exceeded the executor's per-item timeout."""


@dataclasses.dataclass(frozen=True)
class ErrorResult:
    """One failed batch item, in place of its result.

    Attributes:
        index: the item's position in the submitted batch.
        error_type: qualified exception class name (e.g.
            ``RuntimeError`` or ``repro.sim.kernel.SimulationError``).
        message: ``str(exception)``.
        item_repr: abbreviated ``repr`` of the failing item/config.
        attempts: how many times the item was attempted (> 1 only when
            the executor retried after a worker-pool failure).
        traceback: formatted traceback text (empty for timeouts);
            excluded from equality so worker and in-process failures
            compare equal.
    """

    index: int
    error_type: str
    message: str
    item_repr: str = ""
    attempts: int = 1
    traceback: str = dataclasses.field(default="", compare=False,
                                       repr=False)

    @property
    def failed(self) -> bool:
        """Always True; lets callers test items without isinstance."""
        return True

    def summary(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-ready) for reports and CI artifacts."""
        return {
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "item": self.item_repr,
            "attempts": self.attempts,
            "traceback": self.traceback,
        }

    @classmethod
    def from_exception(cls, index: int, item: Any, exc: BaseException,
                       attempts: int = 1) -> "ErrorResult":
        """Build a record from a caught exception."""
        exc_type = type(exc)
        name = exc_type.__qualname__
        if exc_type.__module__ not in ("builtins", "exceptions"):
            name = f"{exc_type.__module__}.{name}"
        return cls(
            index=index,
            error_type=name,
            message=str(exc),
            item_repr=reprlib.repr(item),
            attempts=attempts,
            traceback="".join(_traceback.format_exception(
                exc_type, exc, exc.__traceback__)),
        )


def timeout_result(index: int, item: Any, timeout_s: float,
                   attempts: int = 1) -> ErrorResult:
    """An :class:`ErrorResult` for a pooled item that ran out of time."""
    return ErrorResult(
        index=index,
        error_type=(f"{ScenarioTimeoutError.__module__}."
                    f"{ScenarioTimeoutError.__qualname__}"),
        message=f"scenario exceeded per-item timeout of {timeout_s:g}s",
        item_repr=reprlib.repr(item),
        attempts=attempts,
    )


def failures(results: Sequence[Any]) -> List[ErrorResult]:
    """The :class:`ErrorResult` entries of a batch, in order."""
    return [item for item in results if isinstance(item, ErrorResult)]


__all__ = ["ErrorResult", "ScenarioTimeoutError", "failures",
           "timeout_result"]
