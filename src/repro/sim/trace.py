"""Simulation tracing.

:class:`TraceRecorder` collects timestamped records emitted by the kernel
and by models (radio state changes, MAC decisions, application events).
Tracing is opt-in: scenarios run without a recorder pay only a ``None``
check per event.

Records are plain tuples so tests can assert on them directly, and the
recorder can render itself as text for debugging (``str(trace)``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

from .simtime import format_time


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: *who* did *what* at *when*."""

    time: int
    source: str
    kind: str
    detail: str

    def render(self) -> str:
        """Format as a fixed-width text line."""
        return (f"{format_time(self.time):>14}  {self.source:<20} "
                f"{self.kind:<16} {self.detail}")


class TraceRecorder:
    """Append-only in-memory trace buffer with simple filtering.

    Args:
        capacity: optional bound on retained records; when exceeded the
            oldest records are dropped (the counter keeps the true total).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        # A deque bounds the buffer with O(1) eviction per append; the
        # old list-slice drop (``del records[:overflow]``) was O(n) on
        # *every* overflowing append, i.e. quadratic over a long run.
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._capacity = capacity
        self._total = 0

    @property
    def capacity(self) -> Optional[int]:
        """Configured bound on retained records (None = unbounded)."""
        return self._capacity

    def record(self, time: int, source: str, kind: str, detail: str) -> None:
        """Append one record (oldest evicted past ``capacity``)."""
        self._total += 1
        self._records.append(TraceRecord(time, source, kind, detail))

    @property
    def total_recorded(self) -> int:
        """Number of records ever recorded (including evicted ones)."""
        return self._total

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, source: Optional[str] = None,
               kind: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given source and/or kind (exact match)."""
        return [r for r in self._records
                if (source is None or r.source == source)
                and (kind is None or r.kind == kind)]

    def __str__(self) -> str:
        return "\n".join(r.render() for r in self._records)


__all__ = ["TraceRecord", "TraceRecorder"]
