"""Ablation A6: co-channel interference between adjacent BANs.

A network-level study the paper's framework enables: two patients
wearing independent TDMA BANs share the 2.4 GHz channel.  Each network
is internally collision-free, but the two schedules are mutually
unsynchronised; whenever their transmissions overlap, frames corrupt
(detected by the modelled nRF2401 CRC) and the foreign traffic charges
overhearing/discard costs.

The benchmark compares each BAN in isolation against the adjacent
arrangement with cycle lengths of 30 ms and 40 ms and a stagger that
makes the grids interleave adversarially, and quantifies:

* collision corruptions on the shared ether (zero when isolated),
* data delivery at each base station,
* beacon losses (nodes free-run across them — the MAC's robustness).
"""

from conftest import bench_measure_s, run_once
from repro.net.multi import MultiBanScenario
from repro.net.scenario import BanScenario, BanScenarioConfig


def make_configs(measure_s: float):
    return [
        BanScenarioConfig(mac="static", app="ecg_streaming", num_nodes=3,
                          cycle_ms=30.0, sampling_hz=205.0,
                          measure_s=measure_s),
        BanScenarioConfig(mac="static", app="ecg_streaming", num_nodes=3,
                          cycle_ms=40.0, sampling_hz=150.0,
                          measure_s=measure_s),
    ]


def run_study(measure_s: float):
    isolated = [BanScenario(config).run()
                for config in make_configs(measure_s)]
    multi = MultiBanScenario(make_configs(measure_s), seed=1,
                             stagger_ms=7.8)
    adjacent = multi.run()
    return isolated, multi, adjacent


def test_ablation_co_channel_interference(benchmark):
    measure_s = min(bench_measure_s(), 30.0)
    isolated, multi, adjacent = run_once(benchmark, run_study, measure_s)

    collisions = multi.collisions_detected
    benchmark.extra_info["collisions"] = collisions
    print(f"\n{multi.interference_summary(adjacent)}")

    # Interference is real: the shared ether sees collisions the
    # isolated runs never produce.
    assert collisions > 0

    # Victim analysis: at least one BAN loses data frames relative to
    # its isolated run (CRC-detected corruption at the base station).
    losses = []
    for index, ban_name in enumerate(("ban1", "ban2")):
        sent_isolated = sum(n.traffic.data_tx
                            for n in isolated[index].nodes.values())
        sent_adjacent = sum(n.traffic.data_tx
                            for n in adjacent[ban_name].nodes.values())
        losses.append(sent_isolated - sent_adjacent)
        print(f"  {ban_name}: intact data frames {sent_isolated} "
              f"isolated -> {sent_adjacent} adjacent")
    assert max(losses) > 0

    # Overhearing: foreign frames land inside beacon-listen windows and
    # are dropped by the hardware filter — booked, not free.
    total_overheard = sum(
        n.traffic.overheard
        for result in adjacent.values() for n in result.nodes.values())
    assert total_overheard > 0

    # Robustness: despite collided beacons, every node is still synced
    # (free-running bridges isolated losses).
    for ban in multi.bans:
        assert all(node.mac.is_synced for node in ban.nodes)

    # Energy attribution stays conservative under interference.
    for result in adjacent.values():
        for node in result.nodes.values():
            total = node.losses.total_j * 1e3
            assert abs(total - node.radio_mj) < 1e-6 * max(1.0, total)
