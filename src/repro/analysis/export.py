"""Result export: flat records, CSV and JSON.

Downstream analysis (spreadsheets, notebooks, regression dashboards)
wants flat tables, not nested dataclasses.  This module flattens
:class:`~repro.core.report.NetworkEnergyResult` and
:class:`~repro.analysis.experiments.ExperimentResult` into plain
records and serialises them.
"""

from __future__ import annotations

import io
import json
from typing import Dict, List, Sequence

from ..core.losses import RadioEnergyCategory
from ..core.report import NetworkEnergyResult
from .experiments import ExperimentResult


def network_records(result: NetworkEnergyResult,
                    include_base_station: bool = True
                    ) -> List[Dict[str, object]]:
    """One flat record per node (and optionally the base station)."""
    nodes = list(result.nodes.values())
    if include_base_station and result.base_station is not None:
        nodes.append(result.base_station)
    records: List[Dict[str, object]] = []
    for node in nodes:
        record: Dict[str, object] = {
            "node": node.node_id,
            "horizon_s": node.horizon_s,
            "radio_mj": node.radio_mj,
            "mcu_mj": node.mcu_mj,
            "asic_mj": node.asic_mj,
            "total_mj": node.total_mj,
            "avg_power_mw": node.average_power_mw,
            "data_tx": node.traffic.data_tx,
            "data_rx": node.traffic.data_rx,
            "control_tx": node.traffic.control_tx,
            "control_rx": node.traffic.control_rx,
            "overheard": node.traffic.overheard,
            "corrupted": node.traffic.corrupted,
        }
        for category in RadioEnergyCategory:
            energy = 0.0
            if node.losses is not None:
                energy = node.losses.energy_j.get(category, 0.0) * 1e3
            record[f"loss_{category.value}_mj"] = energy
        records.append(record)
    return records


def experiment_records(result: ExperimentResult) -> List[Dict[str, object]]:
    """One flat record per reproduced table row."""
    return [{
        "table": result.table_id,
        "parameter": row.parameter,
        "cycle_ms": row.cycle_ms,
        "radio_real_mj": row.radio_real_mj,
        "radio_paper_sim_mj": row.radio_paper_sim_mj,
        "radio_ours_mj": row.radio_ours_mj,
        "mcu_real_mj": row.mcu_real_mj,
        "mcu_paper_sim_mj": row.mcu_paper_sim_mj,
        "mcu_ours_mj": row.mcu_ours_mj,
        "radio_err_vs_real": row.error_vs("real", "radio"),
        "mcu_err_vs_real": row.error_vs("real", "mcu"),
    } for row in result.rows]


def to_csv(records: Sequence[Dict[str, object]]) -> str:
    """Serialise flat records as CSV text (stable column order from the
    first record; floats at 6 significant digits)."""
    if not records:
        return ""
    columns = list(records[0].keys())
    buffer = io.StringIO()
    buffer.write(",".join(columns) + "\n")
    for record in records:
        cells = []
        for column in columns:
            value = record.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.6g}")
            else:
                cells.append(str(value))
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def to_json(records: Sequence[Dict[str, object]]) -> str:
    """Serialise flat records as pretty-printed JSON."""
    return json.dumps(list(records), indent=2, sort_keys=True)


__all__ = ["network_records", "experiment_records", "to_csv", "to_json"]
