"""Tests for the adaptive cardiac application (mode switching)."""

import pytest

from repro.apps.adaptive import AdaptiveCardiacApp, CardiacMode
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.signals.arrhythmia import IrregularEcg
from repro.signals.ecg import SyntheticEcg
from repro.signals.sources import ScaledSource


def build(signal, measure_s=20.0, cycle_ms=60.0, **app_checks):
    config = BanScenarioConfig(mac="static", app="adaptive", num_nodes=1,
                               cycle_ms=cycle_ms, measure_s=measure_s)
    scenario = BanScenario(config)
    scenario.nodes[0].asic.connect_source(
        0, ScaledSource(signal, gain=0.8, offset=1.25))
    scenario.nodes[0].asic.connect_source(
        1, ScaledSource(signal, gain=0.5, offset=1.25))
    result = scenario.run()
    return scenario, scenario.nodes[0].app, result


class TestNormalRhythm:
    def test_stays_in_monitor_mode(self):
        _, app, _ = build(SyntheticEcg(heart_rate_bpm=75.0))
        assert app.mode is CardiacMode.MONITOR
        assert app.alarms_raised == 0
        assert app.alarm_time_fraction(20.0) == 0.0

    def test_sends_beat_reports_only(self):
        scenario, app, result = build(SyntheticEcg(heart_rate_bpm=75.0))
        node = result.node("node1")
        # ~1.25 beats/s over the window, one 4-byte report each.
        assert node.traffic.data_tx \
            == pytest.approx(1.25 * 20.0, rel=0.35)
        frames = scenario.base_station.frames_from("node1")
        assert all(f.payload["kind"] == "beat" for f in frames)

    def test_energy_close_to_rpeak_app(self):
        _, _, adaptive = build(SyntheticEcg(heart_rate_bpm=75.0))
        rpeak = BanScenario(BanScenarioConfig(
            mac="static", app="rpeak", num_nodes=1, cycle_ms=60.0,
            measure_s=20.0)).run()
        a = adaptive.node("node1")
        r = rpeak.node("node1")
        assert a.radio_mj == pytest.approx(r.radio_mj, rel=0.05)


class TestArrhythmiaResponse:
    def test_dropped_beats_raise_alarm(self):
        signal = IrregularEcg(heart_rate_bpm=75.0,
                              dropped_beat_prob=0.15, seed=5)
        _, app, _ = build(signal)
        assert app.alarms_raised >= 1
        assert any(mode is CardiacMode.ALARM
                   for _, mode, _ in app.mode_changes)
        reasons = [reason for _, mode, reason in app.mode_changes
                   if mode is CardiacMode.ALARM]
        assert any("irregular" in r or "bradycardia" in r
                   for r in reasons)

    def test_alarm_streams_raw_waveform(self):
        signal = IrregularEcg(heart_rate_bpm=75.0,
                              dropped_beat_prob=0.15, seed=5)
        scenario, app, result = build(signal)
        frames = scenario.base_station.frames_from("node1")
        kinds = {f.payload["kind"] for f in frames}
        assert "alarm_stream" in kinds
        stream_frames = [f for f in frames
                         if f.payload["kind"] == "alarm_stream"]
        assert all(f.payload_bytes == 18 for f in stream_frames)
        assert any(f.payload["codes"] for f in stream_frames)

    def test_alarm_costs_more_energy(self):
        """The guard window dominates the radio budget, so the alarm's
        extra streaming shows up as a small radio increase and a large
        traffic increase."""
        normal_signal = SyntheticEcg(heart_rate_bpm=75.0)
        sick_signal = IrregularEcg(heart_rate_bpm=75.0,
                                   dropped_beat_prob=0.15, seed=5)
        _, _, normal = build(normal_signal)
        _, sick_app, sick = build(sick_signal)
        assert sick_app.alarm_time_fraction(20.0) > 0.1
        assert sick.node("node1").traffic.data_tx \
            > 2 * normal.node("node1").traffic.data_tx
        assert sick.node("node1").radio_mj \
            > 1.005 * normal.node("node1").radio_mj

    def test_recovers_after_hold(self):
        """Force an alarm during a *normal* rhythm: once the hold
        expires with no further abnormality, MONITOR mode returns."""
        from repro.sim.simtime import seconds
        config = BanScenarioConfig(mac="static", app="adaptive",
                                   num_nodes=1, cycle_ms=60.0,
                                   measure_s=30.0)
        scenario = BanScenario(config)
        signal = SyntheticEcg(heart_rate_bpm=75.0)
        scenario.nodes[0].asic.connect_source(
            0, ScaledSource(signal, gain=0.8, offset=1.25))
        scenario.start_all()
        app = scenario.nodes[0].app
        scenario.sim.run_until(seconds(5.0))
        app._enter_alarm("injected for test")
        assert app.in_alarm
        scenario.sim.run_until(seconds(25.0))  # hold is 10 s
        assert not app.in_alarm
        assert app.mode_changes[-1][1] is CardiacMode.MONITOR

    def test_tachycardia_detection(self):
        _, app, _ = build(SyntheticEcg(heart_rate_bpm=160.0))
        assert app.alarms_raised >= 1
        reasons = " ".join(reason for _, _, reason in app.mode_changes)
        assert "tachycardia" in reasons

    def test_bradycardia_detection(self):
        _, app, _ = build(SyntheticEcg(heart_rate_bpm=38.0))
        assert app.alarms_raised >= 1
        reasons = " ".join(reason for _, _, reason in app.mode_changes)
        assert "bradycardia" in reasons


class TestValidation:
    def test_bad_thresholds(self, sim, cal):
        config = BanScenarioConfig(mac="static", app="adaptive",
                                   num_nodes=1, measure_s=1.0)
        scenario = BanScenario(config)
        from repro.apps.adaptive import AdaptiveCardiacApp as App
        node = scenario.nodes[0]
        with pytest.raises(ValueError, match="bradycardia"):
            App(scenario.sim, node.scheduler, node.asic, node.adc,
                node.mac, cal, bradycardia_bpm=150.0,
                tachycardia_bpm=100.0, name="bad")

    def test_alarm_fraction_validation(self):
        _, app, _ = build(SyntheticEcg(), measure_s=2.0)
        with pytest.raises(ValueError):
            app.alarm_time_fraction(0.0)
