"""Deterministic per-purpose random streams.

A simulation mixes several stochastic processes (SSR back-off delays,
crystal-drift assignment, channel loss, signal noise).  Drawing them all
from one generator makes results depend on *call order*, so adding a node
would perturb every other node's randomness.  :class:`RngRegistry` instead
derives an independent, stable stream per ``(purpose)`` key from a master
seed: the stream named ``"node3.backoff"`` produces the same sequence no
matter what else the scenario contains.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed all streams are derived from."""
        return self._master_seed

    def stream(self, purpose: str) -> random.Random:
        """Return the stream for ``purpose``, creating it on first use.

        The per-stream seed is SHA-256(master_seed || purpose) truncated to
        64 bits, so streams are decorrelated and insensitive to creation
        order.
        """
        existing = self._streams.get(purpose)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self._master_seed}:{purpose}".encode()).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(seed)
        self._streams[purpose] = stream
        return stream

    def uniform_ticks(self, purpose: str, low: int, high: int) -> int:
        """Draw an integer tick count uniformly from [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}] for {purpose!r}")
        return self.stream(purpose).randint(low, high)


__all__ = ["RngRegistry"]
