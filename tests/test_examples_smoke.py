"""Smoke tests: the example scripts must import cleanly, and the fast
ones must run end-to-end as subprocesses.

Long examples (60 s simulations, multi-arrangement sweeps) are covered
indirectly — every scenario they build is exercised elsewhere in the
suite — so only import-checked here to keep the suite fast.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = ROOT / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))

#: Examples fast enough to execute fully in CI (< ~30 s each).
FAST_EXAMPLES = ("quickstart.py", "battery_lifecycle.py")


class TestExamples:
    def test_expected_examples_present(self):
        assert set(ALL_EXAMPLES) >= {
            "quickstart.py",
            "rpeak_vs_streaming.py",
            "dynamic_join.py",
            "design_space_tuning.py",
            "heterogeneous_ban.py",
            "ward_interference.py",
            "battery_lifecycle.py",
        }

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_example_runs(self, name):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / name)],
            capture_output=True, text=True, timeout=180)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()

    def test_every_example_has_a_docstring_and_run_line(self):
        for name in ALL_EXAMPLES:
            text = (EXAMPLES / name).read_text()
            assert text.lstrip().startswith(("#!", '"""')), name
            assert "Run:" in text, f"{name} lacks a Run: line"
