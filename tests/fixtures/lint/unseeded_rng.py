"""Seeded-bug fixture: RNG construction that breaks replay.

``counter_rng`` reconstructs the PR 4 frame-id bug shape: seeding a
generator from a monotonically increasing counter, which changes the
draw sequence whenever scenario interleaving changes.  The other two
draw OS entropy outright.
"""

import itertools
import random

_NEXT_FRAME_ID = itertools.count(1)


def fresh_generator() -> random.Random:
    # BUG(RNG001): no seed -- OS entropy.
    return random.Random()


def counter_rng() -> random.Random:
    # BUG(RNG002): counter-derived seed (the PR 4 frame-id bug shape).
    return random.Random(next(_NEXT_FRAME_ID))


def entropy_rng() -> random.SystemRandom:
    # BUG(RNG001): SystemRandom is OS entropy by definition.
    return random.SystemRandom()


def proper_stream(seed: int) -> random.Random:
    # Legal: derives from a seed parameter.
    return random.Random(seed * 31 + 7)
