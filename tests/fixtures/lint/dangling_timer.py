"""Seeded-bug fixture: scheduling handles nobody can ever cancel.

``DanglingSampler`` discards the handle of a periodic ``every()``
event, so the tick outlives the component with no way to stop it
(LIF004).  ``RearmingSampler`` is the same bug in disguise: a one-shot
``after()`` whose callback unconditionally re-schedules itself.  The
fixed twins — ``OwnedSampler`` (stores the periodic handle and
cancels it on the stop boundary) and ``GuardedSampler`` (early-exit
guard before the re-arm) — must stay silent.

The spec is co-located as a pure literal; the analyzer never imports
this file.
"""

from typing import Any, Callable, List, Optional

from repro.core.lifecycles import LifecycleSpec

FIXTURE_SCHED = LifecycleSpec(
    resource="fake-tick",
    module="sim/fake_kernel.py",
    class_names=("FakeKernel",),
    release=("cancel_event",),
    boundary=(("on_start", "on_stop"),),
    handle_factories=("every",),
    reschedule_factories=("at", "after"),
)


def cancel_event(entry: List[Any]) -> None:
    """Disarm a scheduled entry in place (mirrors the kernel API)."""
    entry[-1] = None


class FakeKernel:
    """Minimal scheduler; its own methods are lifecycle-exempt."""

    def every(self, period: float,
              callback: Callable[[], None]) -> List[Any]:
        return [period, callback]

    def after(self, delay: float,
              callback: Callable[[], None]) -> List[Any]:
        return [delay, callback]

    def at(self, when: float,
           callback: Callable[[], None]) -> List[Any]:
        return [when, callback]


class DanglingSampler:
    """BUG(LIF004): the periodic handle is discarded on arm."""

    def __init__(self, sim: FakeKernel) -> None:
        self._sim = sim
        self.samples = 0

    def on_start(self) -> None:
        self._sim.every(1.0, self._sample)  # handle dropped

    def on_stop(self) -> None:
        self.samples = 0  # nothing can cancel the tick now

    def _sample(self) -> None:
        self.samples += 1


class RearmingSampler:
    """BUG(LIF004): a one-shot that unconditionally re-arms itself."""

    def __init__(self, sim: FakeKernel) -> None:
        self._sim = sim
        self.samples = 0

    def _sample(self) -> None:
        self.samples += 1
        self._sim.after(1.0, self._sample)  # periodic in disguise


class OwnedSampler:
    """Fixed twin: the handle is stored and cancelled on stop."""

    def __init__(self, sim: FakeKernel) -> None:
        self._sim = sim
        self._tick: Optional[List[Any]] = None
        self.samples = 0

    def on_start(self) -> None:
        self._tick = self._sim.every(1.0, self._sample)

    def on_stop(self) -> None:
        if self._tick is not None:
            cancel_event(self._tick)
        self._tick = None

    def _sample(self) -> None:
        self.samples += 1


class GuardedSampler:
    """Fixed twin: the re-arm sits behind a stopped-state guard."""

    def __init__(self, sim: FakeKernel) -> None:
        self._sim = sim
        self._running = False
        self.samples = 0

    def _sample(self) -> None:
        if not self._running:
            return
        self.samples += 1
        self._sim.after(1.0, self._sample)
