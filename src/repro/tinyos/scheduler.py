"""The TinyOS FIFO task scheduler and MCU power manager.

TinyOS semantics reproduced here (Section 3.2.1 / reference [1] of the
paper):

* tasks are posted into a FIFO queue and run to completion, in post
  order, one at a time;
* when the queue drains, the scheduler puts the MCU into a low-power
  mode ("the scheduler calculates in which of the 5 available power save
  modes the microcontroller will be put"; for these applications it only
  ever used the first one, Section 4.1);
* a post into an empty queue wakes the MCU (6 us wake-up latency) and
  dispatch resumes.

The scheduler is the *only* driver of the MCU power state, which keeps
the energy accounting coherent: MCU active time == time executing tasks
(+ wake-up transitions).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, TYPE_CHECKING

from ..hw.mcu import Msp430
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from .power import DeepSleepPolicy, Lpm0Only
from .tasks import Task

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..obs.spans import SpanTracer


class TaskScheduler:
    """FIFO run-to-completion scheduler bound to one MCU."""

    def __init__(self, sim: Simulator, mcu: Msp430,
                 name: str = "scheduler",
                 trace: Optional[TraceRecorder] = None) -> None:
        self._sim = sim
        self._mcu = mcu
        self.name = name
        self._dispatch_label = f"{name}.dispatch"
        self._trace = trace
        self._queue: Deque[Task] = deque()
        self._dispatching = False
        self._tasks_run = 0
        self._next_task_id = 1
        #: How to sleep when the queue drains (default: the paper's
        #: LPM0-only behaviour).
        self.power_policy: DeepSleepPolicy = Lpm0Only()
        #: Returns the absolute tick of the node's next known wake-up
        #: (sampling timer, beacon window, slot) or None; installed by
        #: the node assembly when a deep-sleep policy is in use.
        self.wake_hint_provider: Optional[Callable[[], Optional[int]]] \
            = None
        #: Optional causal-span tracer (:mod:`repro.obs.spans`).
        self.spans: Optional["SpanTracer"] = None

    # ------------------------------------------------------------------
    # Posting
    # ------------------------------------------------------------------
    def post(self, body: Callable[[], None], cycles: int,
             label: str = "") -> Task:
        """Post a task; wakes the MCU if the queue was idle.

        Args:
            body: side effects, executed at dispatch time.
            cycles: MCU active cost in core clock cycles.
            label: trace name.
        """
        task = Task(body=body, cycles=cycles, label=label,
                    task_id=self._next_task_id)
        self._next_task_id += 1
        self._queue.append(task)
        if not self._dispatching:
            self._start_dispatch()
        return task

    def post_cost_only(self, cycles: int, label: str = "") -> Task:
        """Post a task that only costs MCU time (no modelled side effect).

        Used for activities whose effect is already modelled elsewhere
        but whose CPU cost must be paid, e.g. beacon processing.
        """
        return self.post(lambda: None, cycles, label)

    @property
    def pending(self) -> int:
        """Tasks currently queued (excluding the one executing)."""
        return len(self._queue)

    @property
    def tasks_run(self) -> int:
        """Total tasks dispatched so far."""
        return self._tasks_run

    @property
    def is_idle(self) -> bool:
        """True when nothing is queued or executing."""
        return not self._dispatching and not self._queue

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _start_dispatch(self) -> None:
        self._dispatching = True
        wake_latency = self._mcu.wake()
        # The first task starts after the wake-up transition (6 us from
        # the power-saving mode, 0 if the MCU was already active).
        self._sim.after(wake_latency, self._dispatch_next,
                        label=self._dispatch_label)

    def _dispatch_next(self) -> None:
        if not self._queue:
            self._dispatching = False
            self._mcu.sleep(deep=self._choose_deep())
            return
        task = self._queue.popleft()
        self._tasks_run += 1
        mcu = self._mcu
        cycles = task.cycles
        mcu.begin_task(task.label)
        mcu.account_cycles(cycles)
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "task",
                               f"{task.label}#{task.task_id} "
                               f"({cycles} cyc)")
        duration = mcu.cycles_to_ticks(cycles)
        if self.spans is not None:
            self.spans.task_started(task.label, self._sim.now, duration)
        # The body's side effects happen at task start; the MCU then
        # stays active for the task's duration before the next dispatch.
        task.body()
        self._sim.after(duration, self._dispatch_next,
                        label=self._dispatch_label)

    def _choose_deep(self) -> bool:
        if self.wake_hint_provider is None:
            return self.power_policy.choose_deep(None)
        hint = self.wake_hint_provider()
        gap = None if hint is None else max(0, hint - self._sim.now)
        return self.power_policy.choose_deep(gap)


__all__ = ["TaskScheduler"]
