"""Tests for the one-shot reproduction report."""

import pytest

from repro.analysis.summary import full_report
from repro.cli import main


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return full_report(measure_s=2.0)

    def test_contains_all_sections(self, report):
        for section in ("TABLE1", "TABLE2", "TABLE3", "TABLE4",
                        "FIGURE 4", "VALIDATION SUMMARY",
                        "ANALYTIC CROSS-CHECK", "LOSS TAXONOMY"):
            assert section in report

    def test_contains_paper_columns(self, report):
        assert "Radio paper-sim" in report
        assert "Avg err vs real" in report
        assert "idle_listening" in report

    def test_window_recorded(self, report):
        assert "Measurement window: 2 s" in report

    def test_cli_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["report", "--measure-s", "2",
                     "--out", str(out)]) == 0
        text = out.read_text()
        assert "VALIDATION SUMMARY" in text
        assert "wrote" in capsys.readouterr().out

    def test_cli_report_to_stdout(self, capsys):
        assert main(["report", "--measure-s", "2"]) == 0
        assert "FIGURE 4" in capsys.readouterr().out
