"""Process-parallel execution of independent BAN scenarios.

Every table row, sweep point, replication seed and multi-BAN parameter
set is an independent :class:`~repro.net.scenario.BanScenarioConfig`
evaluated by a deterministic simulator, which makes batch evaluation
embarrassingly parallel.  :class:`ScenarioExecutor` fans a batch out
over a :class:`concurrent.futures.ProcessPoolExecutor` and returns
results **in submission order**, so parallel output is bit-identical to
the sequential path — determinism is the contract, parallelism only
changes wall-clock time.

Fallback rules (all silent, all order-preserving):

* ``jobs=1`` runs everything in-process — same code path the worker
  runs, convenient for debugging and profiling.
* Configs that cannot be pickled (e.g. a lambda
  ``sync_policy_factory``) are detected up front and evaluated
  in-process; the rest of the batch still uses the pool.
* If the platform cannot start worker processes at all, the whole
  batch falls back in-process.

Failure rules (the part that keeps long batches alive):

* An exception raised by ``fn`` is captured **per item**.  By default
  the first one (in submission order) re-raises after the remaining
  futures have been drained — never by silently recomputing the whole
  pooled share in-process, which the old code did whenever ``fn``
  happened to raise ``OSError``.  With ``isolate_errors=True`` the
  failing slot instead holds a structured
  :class:`~repro.exec.errors.ErrorResult` and the sibling results
  survive; sequential and pooled batches produce identical outputs.
* A mid-batch :class:`BrokenProcessPool` re-dispatches only the items
  whose futures had not finished (bounded by ``retries`` extra pool
  attempts, then in-process), so already-completed work is never run
  twice.
* ``timeout_s`` bounds each pooled item's wall-clock time; an expired
  item becomes an ``ErrorResult`` (``isolate_errors=True``) or raises
  :class:`~repro.exec.errors.ScenarioTimeoutError`.  Hung worker
  processes are terminated.  In-process items cannot be preempted, so
  the timeout only applies to the pooled path.

An optional :class:`~repro.exec.cache.ResultCache` short-circuits
configs whose results are already on disk; only the misses are
dispatched to workers.

Observability: constructed with a
:class:`~repro.obs.metrics.MetricsRegistry` (and optionally a
:class:`~repro.obs.profiler.SimulationProfiler`), the executor has each
worker build a private registry, run its scenario instrumented, and
ship plain-data snapshots back; the main process merges them in
submission order.  Counters merge additively, so ``jobs=N`` reports the
same MAC/radio/MCU totals as a sequential run.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from time import perf_counter
from typing import (TYPE_CHECKING, Any, Callable, List, Optional,
                    Sequence, Set, Tuple)

from .cache import ResultCache
from .errors import ErrorResult, ScenarioTimeoutError, timeout_result

if TYPE_CHECKING:  # imported lazily at runtime (workers build their own)
    from ..obs.metrics import MetricsRegistry
    from ..obs.profiler import SimulationProfiler
    from ..obs.spans import SpanStore


def _run_config_worker(config: Any) -> Any:
    """Build and run one scenario (module-level: must be picklable)."""
    from ..net.scenario import BanScenario
    return BanScenario(config).run()


def _run_config_worker_obs(config: Any, profile: bool = False,
                           spans: bool = False
                           ) -> Tuple[Any, dict, Optional[dict],
                                      Optional[dict]]:
    """Run one scenario instrumented; ship snapshots, not objects.

    Returns ``(result, metrics_snapshot, profiler_snapshot,
    spans_snapshot)``.  The worker builds a private registry (and,
    with ``spans``, a private :class:`~repro.obs.spans.SpanStore`) so
    merging in the parent is a pure, order-preserving fold over plain
    dicts.
    """
    from ..net.scenario import BanScenario
    from ..obs import (GLOBAL, MetricsRegistry, SimulationProfiler,
                       collect_scenario_metrics, collect_simulator_metrics)
    registry = MetricsRegistry()
    scenario = BanScenario(config)
    scenario.sim.metrics = registry
    profiler = SimulationProfiler() if profile else None
    if profiler is not None:
        scenario.sim.profiler = profiler
    tracer = None
    if spans:
        from ..obs.spans import attach_span_tracer
        tracer = attach_span_tracer(scenario)
    started = perf_counter()
    result = scenario.run()
    wall_s = perf_counter() - started
    collect_scenario_metrics(scenario, registry)
    collect_simulator_metrics(scenario.sim, registry)
    registry.histogram("exec", GLOBAL, "scenario_wall_s").observe(wall_s)
    return (result, registry.snapshot(),
            profiler.snapshot() if profiler is not None else None,
            tracer.store.snapshot() if tracer is not None else None)


def default_jobs() -> int:
    """Worker count used for ``jobs=None``: the machine's CPU count."""
    return os.cpu_count() or 1


def _picklable(value: Any) -> bool:
    try:
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except (pickle.PicklingError, TypeError, AttributeError):
        return False


class ScenarioExecutor:
    """Runs batches of independent scenario configs, optionally parallel.

    Args:
        jobs: worker process count.  ``1`` (the default) executes
            in-process; ``None`` uses :func:`default_jobs`.
        cache: optional :class:`ResultCache` consulted before running
            and updated after; its ``stats`` field accumulates
            hit/miss counts across batches.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, :meth:`run_configs` runs scenarios instrumented
            and merges every worker's snapshot here.
        profiler: optional
            :class:`~repro.obs.profiler.SimulationProfiler` merging the
            per-scenario callback timings (implies instrumented runs).
        spans: optional :class:`~repro.obs.spans.SpanStore`; when
            given, every fresh run is traced with a private store and
            the snapshots merge here in submission order (rebased span
            IDs), so ``jobs=N`` span output equals sequential.  Like
            metrics, cache hits contribute no spans.
        isolate_errors: when True, an item whose evaluation raises (or
            times out) yields an :class:`ErrorResult` in its slot and
            the rest of the batch completes; when False (default), the
            first failure re-raises after the in-flight futures drain.
        timeout_s: optional per-item wall-clock bound for pooled items;
            expired items fail (``ErrorResult`` or
            :class:`ScenarioTimeoutError` per ``isolate_errors``) and
            their worker processes are terminated.
        retries: extra process-pool attempts for items whose futures
            were lost to a *pool-level* failure (``BrokenProcessPool``
            and kin) before falling back in-process.  Exceptions raised
            by the item itself are never retried — the simulator is
            deterministic, so they would fail identically.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ResultCache] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 profiler: Optional["SimulationProfiler"] = None,
                 spans: Optional["SpanStore"] = None,
                 isolate_errors: bool = False,
                 timeout_s: Optional[float] = None,
                 retries: int = 0) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = default_jobs() if jobs is None else jobs
        self.cache = cache
        self.metrics = metrics
        self.profiler = profiler
        self.spans = spans
        self.isolate_errors = isolate_errors
        self.timeout_s = timeout_s
        self.retries = retries

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            ) -> List[Any]:
        """Apply picklable ``fn`` to each item; results in item order.

        The generic machinery behind :meth:`run_configs`, exposed for
        batch entry points that need a custom per-item function (e.g.
        multi-BAN runs).  Unpicklable items are evaluated in-process;
        so is everything when ``jobs == 1`` or the pool cannot start.
        Failures follow the module-level failure rules: per-item
        capture, pool-level retry of unfinished items only, optional
        per-item timeout on the pooled path.
        """
        items = list(items)
        results: List[Any] = [None] * len(items)
        if self.jobs == 1 or len(items) <= 1:
            for index in range(len(items)):
                results[index] = self._run_one_local(fn, items, index)
            return results

        skip = {index for index, item in enumerate(items)
                if not _picklable(item)}
        if not _picklable(fn):
            skip = set(range(len(items)))
        pooled = [index for index in range(len(items))
                  if index not in skip]
        if pooled:
            skip.update(self._run_pooled(fn, items, pooled, results))
        for index in sorted(skip):
            results[index] = self._run_one_local(fn, items, index)
        return results

    # ------------------------------------------------------------------
    # Failure-isolating execution paths
    # ------------------------------------------------------------------
    def _run_one_local(self, fn: Callable[[Any], Any],
                       items: Sequence[Any], index: int) -> Any:
        """Evaluate one item in-process under the isolation policy."""
        try:
            return fn(items[index])
        # lint: allow(EXC001): isolation contract, re-raised otherwise
        except Exception as exc:
            if not self.isolate_errors:
                raise
            return ErrorResult.from_exception(index, items[index], exc)

    def _run_pooled(self, fn: Callable[[Any], Any], items: Sequence[Any],
                    pooled: Sequence[int], results: List[Any]
                    ) -> Set[int]:
        """Evaluate ``pooled`` indices via a process pool.

        Fills ``results`` in place and returns the indices that still
        need in-process evaluation (pool never started, or pool-level
        failures exhausted ``retries``).  Items whose evaluation raised
        are *finished* — recomputing a deterministic failure would only
        duplicate side effects — so they are never re-dispatched.
        """
        remaining = list(pooled)
        deferred: Optional[BaseException] = None
        attempt = 0
        while remaining:
            attempt += 1
            done: Set[int] = set()
            try:
                workers = min(self.jobs, len(remaining))
                pool = ProcessPoolExecutor(max_workers=workers)
            except (OSError, ValueError):
                return set(remaining)
            timed_out = False
            try:
                futures = [(index, pool.submit(fn, items[index]))
                           for index in remaining]
                for index, future in futures:
                    try:
                        results[index] = future.result(
                            timeout=self.timeout_s)
                        done.add(index)
                    except BrokenProcessPool:
                        raise  # pool-level: handled by the outer except
                    except FuturesTimeoutError:
                        timed_out = True
                        future.cancel()
                        if not self.isolate_errors:
                            raise ScenarioTimeoutError(
                                f"batch item {index} exceeded "
                                f"{self.timeout_s:g}s") from None
                        results[index] = timeout_result(
                            index, items[index], self.timeout_s, attempt)
                        done.add(index)
                    # lint: allow(EXC001): per-item capture, deferred
                    except Exception as exc:
                        # Raised by fn inside the worker (including
                        # OSError — previously mistaken for a pool
                        # failure and silently recomputed everywhere).
                        done.add(index)
                        if self.isolate_errors:
                            results[index] = ErrorResult.from_exception(
                                index, items[index], exc, attempt)
                        elif deferred is None:
                            deferred = exc
                remaining = []
            except (OSError, BrokenProcessPool, pickle.PicklingError):
                # Pool machinery failed: only the genuinely unfinished
                # items go around again (or fall back in-process).
                remaining = [index for index in remaining
                             if index not in done]
                if attempt > self.retries:
                    return set(remaining)
            finally:
                self._drain_pool(pool, force=timed_out)
        if deferred is not None:
            raise deferred
        return set()

    @staticmethod
    def _drain_pool(pool: ProcessPoolExecutor, force: bool) -> None:
        """Shut a pool down; ``force`` terminates hung workers."""
        if force:
            processes = list((getattr(pool, "_processes", None)
                              or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    process.terminate()
                except (OSError, AttributeError):
                    pass
        else:
            pool.shutdown(wait=True)

    def run_configs(self, configs: Sequence[Any]) -> List[Any]:
        """Evaluate each config; results in submission order.

        Cached results are returned without running; only misses are
        dispatched (in their original relative order, so sequential
        and parallel runs stay bit-identical).  With ``metrics`` (or
        ``profiler``) set, every fresh run is instrumented and its
        snapshot merged — only the scenario *result* is cached, so
        cache hits contribute no scenario metrics.
        """
        configs = list(configs)
        observed = (self.metrics is not None
                    or self.profiler is not None
                    or self.spans is not None)
        worker: Callable[[Any], Any] = _run_config_worker
        if observed:
            worker = partial(_run_config_worker_obs,
                             profile=self.profiler is not None,
                             spans=self.spans is not None)
        cache = self.cache
        batch_started = perf_counter()

        results: List[Any] = [None] * len(configs)
        miss_indices: List[int] = []
        if cache is None:
            miss_indices = list(range(len(configs)))
        else:
            for index, config in enumerate(configs):
                cached = cache.get(config)
                if cached is not None:
                    results[index] = cached
                else:
                    miss_indices.append(index)
        if miss_indices:
            fresh = self.map(worker,
                             [configs[i] for i in miss_indices])
            if observed:
                fresh = [packed if isinstance(packed, ErrorResult)
                         else self._absorb_observed(packed)
                         for packed in fresh]
            for index, result in zip(miss_indices, fresh):
                results[index] = result
                # Failures are never cached: the record describes one
                # run's misfortune, not the config's value.
                if cache is not None and not isinstance(result,
                                                        ErrorResult):
                    cache.put(configs[index], result)
        if observed:
            failed = sum(1 for result in results
                         if isinstance(result, ErrorResult))
            self._record_batch_metrics(len(configs), len(miss_indices),
                                       perf_counter() - batch_started,
                                       failed)
        return results

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------
    def _absorb_observed(self, packed: Tuple[Any, dict, Optional[dict],
                                             Optional[dict]]
                         ) -> Any:
        """Merge one worker's snapshots; return the bare result."""
        result, metrics_snapshot, profiler_snapshot, spans_snapshot \
            = packed
        if self.metrics is not None:
            self.metrics.merge_snapshot(metrics_snapshot)
        if self.profiler is not None and profiler_snapshot is not None:
            self.profiler.merge_snapshot(profiler_snapshot)
        if self.spans is not None and spans_snapshot is not None:
            self.spans.merge_snapshot(spans_snapshot)
        return result

    def _record_batch_metrics(self, total: int, fresh: int,
                              batch_wall_s: float,
                              failed: int = 0) -> None:
        """Batch-level figures: size, pool width, worker utilisation."""
        if self.metrics is None:
            return
        from ..obs import GLOBAL
        registry = self.metrics
        registry.counter("exec", GLOBAL, "scenarios_run").inc(fresh)
        registry.counter("exec", GLOBAL,
                         "scenarios_cached").inc(total - fresh)
        if failed:
            registry.counter("exec", GLOBAL,
                             "scenarios_failed").inc(failed)
        registry.gauge("exec", GLOBAL, "workers").set(float(self.jobs))
        registry.histogram("exec", GLOBAL,
                           "batch_wall_s").observe(batch_wall_s)
        busy = registry.histogram("exec", GLOBAL, "scenario_wall_s")
        width = min(self.jobs, fresh) if fresh else 0
        if width and batch_wall_s > 0.0:
            registry.gauge("exec", GLOBAL, "worker_utilization").set(
                min(1.0, busy.total / (batch_wall_s * width)))


def run_configs(configs: Sequence[Any], jobs: Optional[int] = 1,
                cache: Optional[ResultCache] = None,
                isolate_errors: bool = False,
                timeout_s: Optional[float] = None,
                retries: int = 0) -> List[Any]:
    """One-call convenience: ``ScenarioExecutor(jobs, cache).run_configs``."""
    return ScenarioExecutor(jobs=jobs, cache=cache,
                            isolate_errors=isolate_errors,
                            timeout_s=timeout_s,
                            retries=retries).run_configs(configs)


__all__ = ["ScenarioExecutor", "default_jobs", "run_configs"]
