"""Event and event-queue primitives for the discrete-event kernel.

The queue is a binary heap keyed on ``(time, sequence)``.  The per-queue
monotonically increasing sequence number gives FIFO semantics among events
scheduled for the same instant, which is what makes the whole simulation
reproducible: the TinyOS task model (post order == run order) depends on
stable same-time ordering.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time (ticks) at which to fire.
        seq: tie-breaking sequence number, assigned by the queue.
        callback: zero-argument callable invoked when the event fires.
        label: human-readable description, used by tracing and error
            messages.  Keep it short; it is emitted once per fire when
            tracing is enabled.
    """

    time: int
    seq: int
    callback: Callable[[], None]
    label: str = ""
    _cancelled: bool = field(default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when it reaches the queue head.

        Cancellation is lazy (the heap entry is not removed) which keeps
        cancel O(1); the kernel discards cancelled entries on pop.
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled


class EventQueue:
    """Min-heap of :class:`Event`, ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, callback: Callable[[], None],
             label: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its Event."""
        event = Event(time=time, seq=next(self._counter),
                      callback=callback, label=label)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when the queue holds no live events.  Cancelled
        entries encountered on the way are discarded.
        """
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event, or ``None`` if empty.

        Cancelled entries at the head are discarded as a side effect, so
        the returned time always belongs to an event that will fire.
        """
        while self._heap:
            _, _, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event.time
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()


class SimulationError(RuntimeError):
    """Raised for kernel-level inconsistencies (e.g. scheduling in the past)."""


__all__ = ["Event", "EventQueue", "SimulationError"]
