"""MSP430 on-chip 12-bit ADC (ADC12) model.

Functionally the ADC quantises an analog channel value into a 12-bit
code.  Its conversion time and the driver overhead are part of the
calibrated per-sample MCU cost (``sample_acquisition`` in
:class:`~repro.core.calibration.McuCosts`), so this module only models
the transfer function, not timing or extra energy.
"""

from __future__ import annotations

#: ADC resolution in bits (MSP430F149 ADC12).
RESOLUTION_BITS = 12

#: Number of quantisation codes.
FULL_SCALE_CODE = (1 << RESOLUTION_BITS) - 1


class Adc12:
    """12-bit successive-approximation ADC transfer function.

    Args:
        vref_low: lower reference voltage (code 0).
        vref_high: upper reference voltage (code 4095).
    """

    def __init__(self, vref_low: float = 0.0,
                 vref_high: float = 2.5) -> None:
        if vref_high <= vref_low:
            raise ValueError(
                f"vref_high ({vref_high}) must exceed vref_low ({vref_low})")
        self.vref_low = vref_low
        self.vref_high = vref_high
        self._span = vref_high - vref_low
        self._conversions = 0

    def convert(self, volts: float) -> int:
        """Quantise ``volts`` to a 12-bit code, clamping at the rails."""
        self._conversions += 1
        code = round((volts - self.vref_low) / self._span
                     * FULL_SCALE_CODE)
        if code < 0:
            return 0
        return code if code < FULL_SCALE_CODE else FULL_SCALE_CODE

    def to_volts(self, code: int) -> float:
        """Inverse transfer function (midpoint reconstruction)."""
        if not 0 <= code <= FULL_SCALE_CODE:
            raise ValueError(
                f"code must be in [0, {FULL_SCALE_CODE}], got {code}")
        span = self.vref_high - self.vref_low
        return self.vref_low + code * span / FULL_SCALE_CODE

    @property
    def conversions(self) -> int:
        """Number of conversions performed (diagnostics)."""
        return self._conversions


__all__ = ["Adc12", "RESOLUTION_BITS", "FULL_SCALE_CODE"]
