"""Tests for the command-line interface."""

import pytest

from repro.cli import BATTERIES, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_commands_exist(self):
        parser = build_parser()
        for command in ("table1", "table2", "table3", "table4",
                        "figure4", "validate", "run", "explain",
                        "baseline", "interference", "sensitivity"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_common_flags(self):
        args = build_parser().parse_args(["table1", "--measure-s", "5",
                                          "--seed", "3"])
        assert args.measure_s == 5.0
        assert args.seed == 3

    def test_run_flags(self):
        args = build_parser().parse_args([
            "run", "--mac", "dynamic", "--app", "rpeak", "--nodes", "2",
            "--battery", "lipo160", "--losses", "--join"])
        assert args.mac == "dynamic"
        assert args.app == "rpeak"
        assert args.nodes == 2
        assert args.battery == "lipo160"
        assert args.losses and args.join

    def test_invalid_mac_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mac", "tokenring"])

    def test_batteries_registry(self):
        assert set(BATTERIES) == {"cr2477", "lipo160"}


class TestExecution:
    def test_table3_output(self, capsys):
        assert main(["table3", "--measure-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "Rpeak application and static TDMA" in out
        assert "Avg err vs paper sim" in out

    def test_figure4_output(self, capsys):
        assert main(["figure4", "--measure-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "preprocessing saving" in out

    def test_run_output(self, capsys):
        assert main(["run", "--app", "rpeak", "--nodes", "2",
                     "--cycle-ms", "60", "--measure-s", "1",
                     "--losses"]) == 0
        out = capsys.readouterr().out
        assert "node1" in out and "node2" in out
        assert "days" in out
        assert "idle_listening" in out

    def test_run_dynamic_with_join(self, capsys):
        assert main(["run", "--mac", "dynamic", "--app", "ecg_streaming",
                     "--nodes", "2", "--measure-s", "1", "--join"]) == 0
        out = capsys.readouterr().out
        assert "dynamic MAC" in out

    def test_explain_output(self, capsys):
        assert main(["explain", "--app", "rpeak",
                     "--cycle-ms", "120"]) == 0
        out = capsys.readouterr().out
        assert "beacon window" in out
        assert "500.0 cycles" in out

    def test_baseline_output(self, capsys):
        assert main(["baseline"]) == 0
        out = capsys.readouterr().out
        assert "airtime_only" in out
        assert "guard_windows" in out

    def test_interference_output(self, capsys):
        assert main(["interference", "--measure-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "collision" in out
        assert "ban1.node1" in out and "ban2.node3" in out

    def test_sensitivity_output(self, capsys):
        assert main(["sensitivity", "--relative", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Tornado" in out
        assert "radio_rx_current" in out

    def test_run_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "nodes.csv"
        json_path = tmp_path / "nodes.json"
        vcd_path = tmp_path / "ban.vcd"
        assert main(["run", "--nodes", "1", "--measure-s", "1",
                     "--csv", str(csv_path), "--json", str(json_path),
                     "--vcd", str(vcd_path)]) == 0
        assert csv_path.read_text().startswith("node,")
        assert '"node": "node1"' in json_path.read_text()
        assert vcd_path.read_text().startswith("$date")
