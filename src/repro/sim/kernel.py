"""The discrete-event simulation kernel.

:class:`Simulator` plays the role TOSSIM plays in the paper: it owns the
global clock and the event queue, and every modelled entity (radios,
timers, the TinyOS scheduler, the channel) advances by scheduling callbacks
on it.

Design notes
------------

* Time is an integer tick count (see :mod:`repro.sim.simtime`); the clock
  only moves forward, to the timestamp of the event being dispatched.
* ``run_until(t)`` dispatches every event with ``time <= t`` and then sets
  the clock to exactly ``t`` so that energy ledgers can be closed at a
  well-defined horizon.
* Exceptions raised inside callbacks propagate out of ``run*`` unchanged,
  annotated with the event label — silent event loss would make energy
  figures quietly wrong.
* The ``run*`` loops are the simulator's hottest code: they operate on
  the queue's raw heap of :class:`~repro.sim.events.Event` entries
  (peek + pop fused into one pass, slots read by index) and branch on
  ``trace is None`` once per run instead of once per event.  Event
  *order* is identical to the straightforward peek/pop formulation —
  the heap key is still (time, seq) — so traces, goldens and energy
  figures are byte-identical.
* Observability is opt-in and branch-free on the hot path: assigning
  :attr:`Simulator.profiler` (a
  :class:`~repro.obs.profiler.SimulationProfiler`) switches
  ``run_until`` to a separate per-callback-timed loop, and assigning
  :attr:`Simulator.metrics` (a
  :class:`~repro.obs.metrics.MetricsRegistry`) records dispatch
  counters/rates once per ``run_until`` *call* — never per event —
  so the disabled path executes exactly the code it executed before,
  and even the enabled path leaves event order and energies
  byte-identical.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from .events import (
    EVT_CALLBACK,
    EVT_CANCELLED,
    EVT_LABEL,
    EVT_TIME,
    EventEntry,
    EventQueue,
    SimulationError,
)
from .rng import RngRegistry
from .trace import TraceRecorder

if TYPE_CHECKING:  # repro.obs stays an optional, opt-in dependency
    from ..obs.metrics import MetricsRegistry
    from ..obs.profiler import SimulationProfiler


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: master seed for the per-purpose random streams handed out by
            :attr:`rng`.  Two simulators built with the same seed and the
            same scenario dispatch byte-identical event sequences.
        trace: optional :class:`TraceRecorder`; when provided, every
            dispatched event is logged to it.
    """

    __slots__ = ("_now", "_queue", "_running", "_dispatched", "rng",
                 "trace", "_end_hooks", "profiler", "metrics",
                 "_serial")

    def __init__(self, seed: int = 0,
                 trace: Optional[TraceRecorder] = None) -> None:
        self._now = 0
        self._queue = EventQueue()
        self._running = False
        self._dispatched = 0
        self._serial = 0
        self.rng = RngRegistry(seed)
        self.trace = trace
        self._end_hooks: List[Callable[[], None]] = []
        #: Optional :class:`~repro.obs.profiler.SimulationProfiler`;
        #: when set, ``run_until`` times every callback (slower, but
        #: event order and energies are unchanged).
        self.profiler: Optional["SimulationProfiler"] = None
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        #: set, each ``run_until`` call records its dispatch count and
        #: rate (cost is per *call*, never per event).
        self.metrics: Optional["MetricsRegistry"] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in ticks."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of events dispatched so far (for diagnostics)."""
        return self._dispatched

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, callback: Callable[[], None],
           label: str = "") -> EventEntry:
        """Schedule ``callback`` at absolute ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past.
        Scheduling *at the current instant* is allowed and runs after all
        callbacks already queued for that instant (FIFO), matching TinyOS
        task-post semantics.  The returned entry can be cancelled with
        :func:`~repro.sim.events.cancel_event`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {label!r} at {time} ticks: "
                f"clock already at {self._now}")
        # Inlined EventQueue.push (this is the scheduling hot path; see
        # the module docstring).
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        event = [time, seq, False, callback, label]
        heappush(queue._heap, event)
        return event

    def after(self, delay: int, callback: Callable[[], None],
              label: str = "") -> EventEntry:
        """Schedule ``callback`` ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {label!r} with negative delay {delay}")
        # Inlined EventQueue.push (scheduling hot path).
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        event = [self._now + delay, seq, False, callback, label]
        heappush(queue._heap, event)
        return event

    def call_soon(self, callback: Callable[[], None],
                  label: str = "") -> EventEntry:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self._queue.push(self._now, callback, label)

    def every(self, period: int, callback: Callable[[], None],
              label: str = "",
              first_delay: Optional[int] = None) -> EventEntry:
        """Schedule ``callback`` every ``period`` ticks; return the entry.

        The fast path for periodic ticks (sampling timers fire at
        hundreds of hertz per node): one persistent heap entry is
        re-armed *in place* on each fire — advance its time by
        ``period``, stamp a fresh sequence number, push it back — so a
        period costs one heap push instead of an ``at()`` call
        allocating a new entry through the scheduling checks.

        Dispatch order is exactly what per-fire ``at()`` re-arming
        produced: the re-arm consumes the next sequence number at the
        same point (before the callback body runs), the grid advances
        from the *scheduled* time, and the (time, seq) heap key is
        identical.  Cancelling the returned entry (or any entry a later
        fire re-pushed — it is the same list object) stops the cycle:
        the kernel discards cancelled entries on pop, so no re-arm
        happens.  The first fire comes after ``first_delay`` ticks
        (default ``period``).
        """
        if period <= 0:
            raise SimulationError(
                f"cannot schedule {label!r} with period {period}; "
                "periods must be positive")
        delay = period if first_delay is None else first_delay
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {label!r} with negative delay {delay}")
        queue = self._queue
        heap = queue._heap
        entry: EventEntry = [self._now + delay, 0, False, None, label]

        def fire() -> None:
            # Re-arm from the scheduled time (entry[0] is the fire time
            # the kernel just dispatched), consuming the next sequence
            # number before the callback body — exactly as a per-fire
            # at() re-arm did.
            entry[0] += period
            seq = queue._next_seq
            queue._next_seq = seq + 1
            entry[1] = seq
            heappush(heap, entry)
            callback()

        entry[3] = fire
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry[1] = seq
        heappush(heap, entry)
        return entry

    def add_end_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked when a ``run*`` call finishes.

        Used by energy ledgers to close their open state interval at the
        simulation horizon so reported energies cover exactly the simulated
        duration.
        """
        self._end_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, end_time: int) -> None:
        """Dispatch all events with time <= ``end_time``.

        On return the clock reads exactly ``end_time`` and all end hooks
        have run, so time-in-state accounting is complete up to the horizon.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before current time {self._now}")
        if self.profiler is not None:
            self._run_until_profiled(end_time)
            return
        metrics = self.metrics
        run_started = perf_counter() if metrics is not None else 0.0
        heap = self._queue._heap
        trace = self.trace
        # Local aliases keep the per-event loop free of global lookups.
        # Pop first and push the (rare) past-horizon head back rather
        # than peeking every iteration; the pushed-back entry keeps its
        # (time, seq) key, so the dispatch order is unchanged.
        pop = heappop
        time_i, cancelled_i = EVT_TIME, EVT_CANCELLED
        callback_i, label_i = EVT_CALLBACK, EVT_LABEL
        dispatched = 0
        self._running = True
        try:
            if trace is None:
                while heap:
                    event = pop(heap)
                    time = event[time_i]
                    if time > end_time:
                        heappush(heap, event)
                        break
                    if event[cancelled_i]:
                        continue
                    self._now = time
                    dispatched += 1
                    try:
                        event[callback_i]()
                    except SimulationError:
                        raise
                    # lint: allow(EXC001): wrapped into SimulationError
                    except Exception as exc:
                        raise SimulationError(
                            f"event {event[label_i]!r} at t={time} "
                            f"failed: {exc}") from exc
            else:
                record = trace.record
                while heap:
                    event = pop(heap)
                    time = event[time_i]
                    if time > end_time:
                        heappush(heap, event)
                        break
                    if event[cancelled_i]:
                        continue
                    self._now = time
                    dispatched += 1
                    record(time, "kernel", "dispatch", event[label_i])
                    try:
                        event[callback_i]()
                    except SimulationError:
                        raise
                    # lint: allow(EXC001): wrapped into SimulationError
                    except Exception as exc:
                        raise SimulationError(
                            f"event {event[label_i]!r} at t={time} "
                            f"failed: {exc}") from exc
        finally:
            self._running = False
            self._dispatched += dispatched
        self._now = end_time
        if metrics is not None:
            self._record_run_metrics(metrics, dispatched,
                                     perf_counter() - run_started)
        for hook in self._end_hooks:
            hook()

    def _record_run_metrics(self, metrics: "MetricsRegistry",
                            dispatched: int,
                            elapsed_s: float) -> None:
        """Record one ``run_until`` call's dispatch figures.

        Called once per run *call* (never per event): the queue depth
        gauge and a wall-time-weighted dispatch-rate histogram, whose
        mean is therefore the overall events-per-wall-second rate.
        """
        metrics.gauge("kernel", "-", "queue_depth").set(len(self._queue))
        if dispatched and elapsed_s > 0.0:
            metrics.histogram("kernel", "-", "dispatch_rate_eps").observe(
                dispatched / elapsed_s, weight=elapsed_s)

    def _run_until_profiled(self, end_time: int) -> None:
        """The ``run_until`` loop with per-callback host timing.

        Selected when :attr:`profiler` is set.  Dispatch order, clock
        behaviour and error handling are identical to the fast loops;
        the only addition is a ``perf_counter`` read around every
        callback, aggregated per label and absorbed into the profiler
        (including the loop's own overhead, so attribution is ~100%).
        """
        heap = self._queue._heap
        trace = self.trace
        profiler = self.profiler
        pop, clock = heappop, perf_counter
        time_i, cancelled_i = EVT_TIME, EVT_CANCELLED
        callback_i, label_i = EVT_CALLBACK, EVT_LABEL
        dispatched = 0
        start_now = self._now
        aggregate: Dict[str, List[float]] = {}
        self._running = True
        loop_start = clock()
        try:
            while heap:
                event = pop(heap)
                time = event[time_i]
                if time > end_time:
                    heappush(heap, event)
                    break
                if event[cancelled_i]:
                    continue
                self._now = time
                dispatched += 1
                label = event[label_i]
                if trace is not None:
                    trace.record(time, "kernel", "dispatch", label)
                started = clock()
                try:
                    event[callback_i]()
                except SimulationError:
                    raise
                # lint: allow(EXC001): wrapped into SimulationError
                except Exception as exc:
                    raise SimulationError(
                        f"event {label!r} at t={time} "
                        f"failed: {exc}") from exc
                finally:
                    elapsed = clock() - started
                    entry = aggregate.get(label)
                    if entry is None:
                        aggregate[label] = [elapsed, 1]
                    else:
                        entry[0] += elapsed
                        entry[1] += 1
        # lint: allow(EXC001): profiler flush before a bare re-raise
        except BaseException:
            self._running = False
            self._dispatched += dispatched
            profiler.absorb(aggregate, clock() - loop_start,
                            self._now - start_now, dispatched)
            raise
        self._running = False
        self._dispatched += dispatched
        self._now = end_time
        profiler.absorb(aggregate, clock() - loop_start,
                        end_time - start_now, dispatched)
        metrics = self.metrics
        if metrics is not None:
            self._record_run_metrics(metrics, dispatched,
                                     clock() - loop_start)
        for hook in self._end_hooks:
            hook()

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Dispatch events until the queue drains.

        ``max_events`` guards against runaway self-rescheduling loops
        (periodic timers make a truly empty queue unreachable); hitting the
        limit raises :class:`SimulationError`.
        """
        queue = self._queue
        trace = self.trace
        self._running = True
        dispatched = 0
        try:
            while True:
                event = queue.pop()
                if event is None:
                    break
                dispatched += 1
                if dispatched > max_events:
                    raise SimulationError(
                        f"run_all exceeded {max_events} events; "
                        "use run_until for scenarios with periodic timers")
                time = event[EVT_TIME]
                self._now = time
                self._dispatched += 1
                if trace is not None:
                    trace.record(time, "kernel", "dispatch",
                                 event[EVT_LABEL])
                try:
                    event[EVT_CALLBACK]()
                except SimulationError:
                    raise
                # lint: allow(EXC001): wrapped into SimulationError
                except Exception as exc:
                    raise SimulationError(
                        f"event {event[EVT_LABEL]!r} at t={time} "
                        f"failed: {exc}") from exc
        finally:
            self._running = False
        for hook in self._end_hooks:
            hook()

    def next_serial(self) -> int:
        """Next value of a deterministic per-simulation serial counter.

        For entity serials that must be unique within one simulation —
        frame ids, for instance.  Kept on the simulator (not a module
        global) so repeat runs in one process, and runs in pooled
        workers, number identically: the determinism contract covers
        trace text too.
        """
        self._serial += 1
        return self._serial

    def pending_events(self) -> int:
        """Number of *live* events currently queued.

        Lazily cancelled stubs still sitting in the heap are excluded, so
        this is the number of callbacks that would actually fire if the
        clock ran forever.
        """
        return len(self._queue)


__all__ = ["Simulator"]
