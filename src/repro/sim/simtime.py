"""Simulation time base.

All simulation timestamps and durations are integer counts of
**nanoseconds**.  An integer time base makes the discrete-event kernel
exactly deterministic (no floating-point drift when summing thousands of
TDMA cycles) and is fine-grained enough to express every physical duration
in the modelled platform exactly:

* one bit at the nRF2401 air rate of 1 Mbit/s is 1000 ns,
* one MSP430 core clock cycle at 8 MHz is 125 ns,
* the 6 us MSP430 wake-up latency is 6000 ns.

The helpers below convert human-friendly units to the integer base and
back.  Converting *to* ticks rounds to the nearest nanosecond; converting
*from* ticks returns floats and is only used for reporting.
"""

from __future__ import annotations

#: Number of simulation ticks per second (tick = 1 ns).
TICKS_PER_SECOND = 1_000_000_000  # unit: tick/s

#: Number of simulation ticks per millisecond.
TICKS_PER_MS = TICKS_PER_SECOND // 1_000  # unit: tick/ms

#: Number of simulation ticks per microsecond.
TICKS_PER_US = TICKS_PER_SECOND // 1_000_000  # unit: tick/us


def seconds(value: float) -> int:
    """Convert seconds to integer simulation ticks (nearest ns)."""
    return round(value * TICKS_PER_SECOND)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer simulation ticks (nearest ns)."""
    return round(value * TICKS_PER_MS)


def microseconds(value: float) -> int:
    """Convert microseconds to integer simulation ticks (nearest ns)."""
    return round(value * TICKS_PER_US)


def nanoseconds(value: int) -> int:
    """Identity helper: nanoseconds *are* the tick unit.

    Exists so call sites can state their unit explicitly, mirroring
    :func:`seconds` / :func:`milliseconds` / :func:`microseconds`.
    """
    return int(value)


def to_seconds(ticks: int) -> float:
    """Convert simulation ticks to (float) seconds, for reporting."""
    return ticks / TICKS_PER_SECOND


def to_milliseconds(ticks: int) -> float:
    """Convert simulation ticks to (float) milliseconds, for reporting."""
    return ticks / TICKS_PER_MS


def to_microseconds(ticks: int) -> float:
    """Convert simulation ticks to (float) microseconds, for reporting."""
    return ticks / TICKS_PER_US


def format_time(ticks: int) -> str:
    """Render a tick count as a human-readable string.

    Chooses the largest unit in which the value is at least 1, e.g.
    ``format_time(1_500_000)`` -> ``'1.500 ms'``.
    """
    if ticks == 0:
        return "0 s"
    magnitude = abs(ticks)
    if magnitude >= seconds(1):
        return f"{ticks / TICKS_PER_SECOND:.3f} s"
    if magnitude >= milliseconds(1):
        return f"{ticks / TICKS_PER_MS:.3f} ms"
    if magnitude >= microseconds(1):
        return f"{ticks / TICKS_PER_US:.3f} us"
    return f"{ticks} ns"


def bits_duration(bits: int, bitrate_bps: float) -> int:
    """Airtime of ``bits`` at ``bitrate_bps`` bits per second, in ticks.

    Used by the radio model to compute packet transmission times, e.g. a
    26-byte ShockBurst frame at 1 Mbit/s lasts ``bits_duration(208, 1e6)``
    = 208_000 ticks (208 us).
    """
    if bits < 0:
        raise ValueError(f"bit count must be non-negative, got {bits}")
    if bitrate_bps <= 0:
        raise ValueError(f"bitrate must be positive, got {bitrate_bps}")
    return round(bits * TICKS_PER_SECOND / bitrate_bps)


def bytes_duration(num_bytes: int, bitrate_bps: float) -> int:
    """Airtime of ``num_bytes`` octets at ``bitrate_bps``, in ticks."""
    return bits_duration(8 * num_bytes, bitrate_bps)
