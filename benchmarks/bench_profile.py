#!/usr/bin/env python3
"""Where does the wall time of a BAN simulation go?

Runs the dense streaming scenario (the ``ban_simulation_rate_5s``
workload of ``run_bench.py``) with a
:class:`~repro.obs.profiler.SimulationProfiler` attached and prints the
ranked per-label host-time table — the measurement that drives (and
re-validates) the model-layer fast-path work.  Attaching the profiler
never changes event order or energies, so the profiled run is the same
simulation the benchmark times.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_profile.py
    PYTHONPATH=src python benchmarks/bench_profile.py --json profile.json
    PYTHONPATH=src python benchmarks/bench_profile.py --mac dynamic \\
        --nodes 3 --measure-s 2 --limit 15

The text table ranks normalised labels (``node*.mac.slot``) by
cumulative host seconds; the JSON document carries the same rows plus
the run's headline figures, for diffing across commits.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.net.scenario import BanScenario, BanScenarioConfig  # noqa: E402
from repro.obs.profiler import SimulationProfiler  # noqa: E402


def profile_scenario(config: BanScenarioConfig) -> SimulationProfiler:
    """Build and run one scenario with a profiler attached."""
    scenario = BanScenario(config)
    profiler = SimulationProfiler()
    scenario.sim.profiler = profiler
    scenario.run()
    return profiler


def profile_document(profiler: SimulationProfiler,
                     config: BanScenarioConfig,
                     limit: int) -> Dict:
    """The profile as a plain-JSON document (ranked rows + headline)."""
    return {
        "scenario": {
            "mac": config.mac,
            "app": config.app,
            "num_nodes": config.num_nodes,
            "cycle_ms": config.cycle_ms,
            "sampling_hz": config.sampling_hz,
            "measure_s": config.measure_s,
        },
        "wall_s": round(profiler.wall_s, 6),
        "sim_s": round(profiler.sim_s, 6),
        "sim_rate": round(profiler.sim_rate, 2),
        "events": profiler.events,
        "attributed_fraction": round(profiler.attributed_fraction, 4),
        "rows": [
            {"label": label,
             "calls": int(count),
             "wall_s": round(seconds, 6),
             "share": round(seconds / profiler.wall_s, 4)
             if profiler.wall_s > 0 else 0.0}
            for label, seconds, count in profiler.top(limit)
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mac", default="static",
                        help="MAC protocol (default: static)")
    parser.add_argument("--app", default="ecg_streaming",
                        help="application (default: ecg_streaming)")
    parser.add_argument("--nodes", type=int, default=5,
                        help="node count (default: 5)")
    parser.add_argument("--cycle-ms", type=float, default=30.0,
                        help="TDMA cycle in ms (default: 30)")
    parser.add_argument("--sampling-hz", type=float, default=205.0,
                        help="per-channel sampling rate (default: 205)")
    parser.add_argument("--measure-s", type=float, default=5.0,
                        help="measured window in sim seconds (default: 5)")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows in the ranked table (default: 25)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the profile as JSON to PATH "
                             "('-' for stdout instead of the text table)")
    args = parser.parse_args(argv)

    config = BanScenarioConfig(mac=args.mac, app=args.app,
                               num_nodes=args.nodes,
                               cycle_ms=args.cycle_ms,
                               sampling_hz=args.sampling_hz,
                               measure_s=args.measure_s)
    profiler = profile_scenario(config)
    document = profile_document(profiler, config, args.limit)
    if args.json == "-":
        print(json.dumps(document, indent=2))
        return 0
    print(profiler.render_table(args.limit))
    if args.json:
        path = pathlib.Path(args.json)
        path.write_text(json.dumps(document, indent=2) + "\n")
        print(f"profile written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
