"""Unit tests for topologies, loss models and channel mechanics."""

import pytest

from repro.core.losses import RadioEnergyCategory
from repro.hw.frames import Frame, FrameKind
from repro.hw.radio import Nrf2401
from repro.phy.channel import Channel
from repro.phy.lossmodels import (
    DistanceLoss,
    PerLinkLoss,
    PerfectChannel,
    UniformLoss,
)
from repro.phy.topology import (
    BODY_PRESET,
    BodyTopology,
    ExplicitLinks,
    FullConnectivity,
    Position,
)
from repro.sim.rng import RngRegistry
from repro.sim.simtime import seconds


class TestTopologies:
    def test_full_connectivity(self):
        topo = FullConnectivity()
        assert topo.in_range("a", "b")
        assert not topo.in_range("a", "a")

    def test_position_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_body_preset_all_links_up_at_2m(self):
        topo = BodyTopology.body_preset(range_m=2.0)
        nodes = list(BODY_PRESET)
        for a in nodes:
            for b in nodes:
                if a != b:
                    assert topo.in_range(a, b)

    def test_body_preset_partitions_at_short_range(self):
        topo = BodyTopology.body_preset(range_m=0.4)
        assert not topo.in_range("head", "left_leg")
        assert topo.in_range("chest", "head")

    def test_body_unknown_node(self):
        topo = BodyTopology.body_preset()
        with pytest.raises(KeyError, match="chest"):
            topo.in_range("chest", "ghost")

    def test_body_invalid_range(self):
        with pytest.raises(ValueError):
            BodyTopology({}, range_m=0.0)

    def test_explicit_links_directed(self):
        topo = ExplicitLinks([("a", "b")])
        assert topo.in_range("a", "b")
        assert not topo.in_range("b", "a")

    def test_connectivity_graph(self):
        topo = ExplicitLinks([("a", "b"), ("b", "c")])
        graph = topo.connectivity_graph(["a", "b", "c"])
        assert set(graph.edges) == {("a", "b"), ("b", "c")}


class TestLossModels:
    def test_perfect_channel_never_corrupts(self):
        rng = RngRegistry(0)
        model = PerfectChannel()
        assert not any(model.is_corrupted(rng, "a", "b", i)
                       for i in range(100))

    def test_uniform_loss_rate(self):
        rng = RngRegistry(0)
        model = UniformLoss(0.3)
        draws = [model.is_corrupted(rng, "a", "b", i) for i in range(5000)]
        rate = sum(draws) / len(draws)
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_uniform_loss_bounds(self):
        with pytest.raises(ValueError):
            UniformLoss(1.5)
        with pytest.raises(ValueError):
            UniformLoss(-0.1)

    def test_uniform_zero_shortcut(self):
        rng = RngRegistry(0)
        assert not UniformLoss(0.0).is_corrupted(rng, "a", "b", 1)

    def test_per_link_loss(self):
        rng = RngRegistry(0)
        model = PerLinkLoss({("a", "b"): 1.0})
        assert model.is_corrupted(rng, "a", "b", 1)
        assert not model.is_corrupted(rng, "b", "a", 1)

    def test_per_link_validation(self):
        with pytest.raises(ValueError):
            PerLinkLoss({("a", "b"): 2.0})

    def test_distance_loss_monotone(self):
        topo = BodyTopology.body_preset()
        model = DistanceLoss(topo, floor_per=0.01, slope_per_m=0.1)
        near = model.per_for("base_station", "chest")
        far = model.per_for("base_station", "head")
        assert far > near > 0.0

    def test_distance_loss_validation(self):
        topo = BodyTopology.body_preset()
        with pytest.raises(ValueError):
            DistanceLoss(topo, floor_per=-0.1)


class TestChannel:
    def test_duplicate_address_rejected(self, sim, cal):
        channel = Channel(sim)
        Nrf2401(sim, cal, channel, "a")
        with pytest.raises(ValueError):
            Nrf2401(sim, cal, channel, "a")

    def test_frames_sent_counter(self, sim, cal):
        channel = Channel(sim)
        a = Nrf2401(sim, cal, channel, "a")
        Nrf2401(sim, cal, channel, "b")
        a.power_up()
        a.send(Frame(src="a", dest="b", kind=FrameKind.DATA,
                     payload_bytes=4))
        sim.run_until(seconds(0.1))
        assert channel.frames_sent == 1

    def test_out_of_range_receiver_hears_nothing(self, sim, cal):
        channel = Channel(sim, topology=ExplicitLinks([("a", "b")]))
        a = Nrf2401(sim, cal, channel, "a")
        b = Nrf2401(sim, cal, channel, "b")
        c = Nrf2401(sim, cal, channel, "c")
        for radio in (a, b, c):
            radio.power_up()
        got_b, got_c = [], []
        b.on_frame = got_b.append
        c.on_frame = got_c.append
        b.start_rx()
        c.start_rx()
        a.send(Frame(src="a", dest="b", kind=FrameKind.DATA,
                     payload_bytes=4))
        sim.at(seconds(0.1), b.stop_rx)
        sim.at(seconds(0.1), c.stop_rx)
        sim.run_until(seconds(0.2))
        assert len(got_b) == 1
        assert got_c == []  # not even overheard: out of range
        c.finalize_attribution()
        snap = c.accountant.snapshot()
        # Not overheard either: the frame never reached c's location.
        assert snap.frames.get(RadioEnergyCategory.OVERHEARING, 0) == 0

    def test_loss_model_corrupts_at_receiver(self, sim, cal):
        channel = Channel(sim, loss_model=PerLinkLoss({("a", "b"): 1.0}))
        a = Nrf2401(sim, cal, channel, "a")
        b = Nrf2401(sim, cal, channel, "b")
        a.power_up()
        b.power_up()
        received = []
        b.on_frame = received.append
        b.start_rx()
        a.send(Frame(src="a", dest="b", kind=FrameKind.DATA,
                     payload_bytes=4))
        sim.at(seconds(0.1), b.stop_rx)
        sim.run_until(seconds(0.2))
        assert received == []
        assert b.snapshot_counters().corrupted == 1


class TestDistanceLossVectorised:
    """The precomputed (numpy) PER table must equal the scalar formula
    bit for bit — the fast path is value-transparent."""

    def test_table_matches_scalar_formula_exactly(self):
        topo = BodyTopology.body_preset()
        floor, slope = 0.01, 0.4
        model = DistanceLoss(topo, floor_per=floor, slope_per_m=slope)
        for src in topo.nodes():
            for dst in topo.nodes():
                expected = min(1.0, floor + slope
                               * topo.position_of(src).distance_to(
                                   topo.position_of(dst)))
                assert model.per_for(src, dst) == expected

    def test_scalar_fallback_agrees_with_table(self):
        topo = BodyTopology.body_preset()
        fast = DistanceLoss(topo, floor_per=0.0, slope_per_m=0.05)
        slow = DistanceLoss(topo, floor_per=0.0, slope_per_m=0.05)
        slow._per_table = None  # force the no-numpy path
        for src in topo.nodes():
            for dst in topo.nodes():
                assert fast.per_for(src, dst) == slow.per_for(src, dst)

    def test_per_saturates_at_one(self):
        topo = BodyTopology({"a": Position(0.0, 0.0),
                             "b": Position(10.0, 0.0)})
        model = DistanceLoss(topo, floor_per=0.5, slope_per_m=1.0)
        assert model.per_for("a", "b") == 1.0

    def test_unknown_node_still_raises_key_error(self):
        model = DistanceLoss(BodyTopology.body_preset())
        with pytest.raises(KeyError, match="nope"):
            model.per_for("chest", "nope")
