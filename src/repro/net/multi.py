"""Multiple BANs sharing one radio channel (co-channel interference).

The paper motivates the simulator with network-level questions its
testbed cannot sweep — "the impact of some parameters (e.g. topologies,
communication protocols, etc.)".  One such question: what happens when
**two patients wearing BANs sit next to each other**?  Each network is
internally collision-free (TDMA), but the two schedules are mutually
unsynchronised, so beacons and data frames of one BAN periodically
overlap the other's — corrupting frames (detected by the nRF2401 CRC)
and charging overhearing energy.

:class:`MultiBanScenario` places any number of independently configured
:class:`~repro.net.scenario.BanScenario` instances on one simulator and
one channel, with per-BAN address prefixes and staggered first beacons,
and measures them together.  Topology can keep the BANs in mutual radio
range (worst case, the default) or separate them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.report import NetworkEnergyResult
from ..phy.channel import Channel
from ..phy.lossmodels import LossModel
from ..phy.topology import Topology
from ..sim.kernel import Simulator
from ..sim.simtime import milliseconds, seconds
from ..sim.trace import TraceRecorder
from .scenario import BanScenario, BanScenarioConfig


class MultiBanScenario:
    """Several BANs, one ether.

    Args:
        configs: one scenario config per BAN.  Their ``measure_s`` must
            agree (the networks are measured over one shared window).
        stagger_ms: offset between consecutive BANs' first beacons; the
            default (a third of a cycle-ish 7 ms) guarantees the
            schedules are de-phased but still collide periodically.
        seed: master seed for the shared simulator.
        topology: shared reachability (default: everyone hears everyone).
        loss_model: shared per-link loss model.
        rf_channels: optional per-BAN nRF2401 frequency channel — the
            deployment remedy for co-channel interference; BANs on
            different channels never hear each other.
        trace: optional recorder installed on the shared kernel instead
            of the ``trace_capacity``-built one (e.g. a sink-fanning
            :class:`~repro.obs.sinks.SinkTraceRecorder`).
    """

    def __init__(self, configs: Sequence[BanScenarioConfig],
                 stagger_ms: float = 7.0,
                 seed: int = 0,
                 topology: Optional[Topology] = None,
                 loss_model: Optional[LossModel] = None,
                 rf_channels: Optional[Sequence[int]] = None,
                 trace_capacity: Optional[int] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        if not configs:
            raise ValueError("need at least one BAN config")
        horizons = {config.measure_s for config in configs}
        if len(horizons) != 1:
            raise ValueError(
                f"all BANs must share measure_s, got {sorted(horizons)}")
        self.measure_s = horizons.pop()
        if trace is None:
            trace = (TraceRecorder(capacity=trace_capacity)
                     if trace_capacity else None)
        self.trace = trace
        self.sim = Simulator(seed=seed, trace=self.trace)
        self.channel = Channel(self.sim, topology=topology,
                               loss_model=loss_model, trace=self.trace)
        if rf_channels is not None and len(rf_channels) != len(configs):
            raise ValueError(
                f"{len(rf_channels)} rf_channels for {len(configs)} BANs")
        self.bans: List[BanScenario] = []
        for index, config in enumerate(configs):
            staggered = replace(
                config,
                first_beacon_ms=(config.first_beacon_ms or 10.0)
                + index * stagger_ms)
            ban = BanScenario(staggered, sim=self.sim,
                              channel=self.channel,
                              prefix=f"ban{index + 1}.")
            if rf_channels is not None:
                ban.base_station.radio.rf_channel = rf_channels[index]
                for node in ban.nodes:
                    node.radio.rf_channel = rf_channels[index]
            self.bans.append(ban)

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, NetworkEnergyResult]:
        """Warm up every BAN, measure one shared window, collect per BAN.

        Returns a map ``"ban1" -> NetworkEnergyResult`` etc.
        """
        for ban in self.bans:
            ban.start_all()
        if any(ban.config.join_protocol for ban in self.bans):
            self._wait_for_joins()
        measure_start = max(ban._measurement_start() for ban in self.bans)
        self.sim.run_until(measure_start)
        for ban in self.bans:
            ban.reset_all()
        self.sim.run_until(measure_start + seconds(self.measure_s))
        return {f"ban{index + 1}": ban.collect(self.measure_s)
                for index, ban in enumerate(self.bans)}

    def _wait_for_joins(self) -> None:
        deadline = self.sim.now + seconds(
            max(ban.config.join_deadline_s for ban in self.bans))
        step = milliseconds(100)
        while self.sim.now < deadline:
            if all(node.mac.is_synced
                   for ban in self.bans for node in ban.nodes):
                return
            self.sim.run_until(min(self.sim.now + step, deadline))
        unsynced = [node.node_id for ban in self.bans
                    for node in ban.nodes if not node.mac.is_synced]
        if unsynced:
            raise RuntimeError(f"nodes failed to join: {unsynced}")

    # ------------------------------------------------------------------
    @property
    def collisions_detected(self) -> int:
        """Cross- and intra-BAN collision corruptions on the shared ether."""
        return self.channel.collisions_detected

    def interference_summary(
            self, results: Dict[str, NetworkEnergyResult]) -> str:
        """Readable cross-BAN interference digest."""
        lines = ["Co-channel interference summary:"]
        for ban_name, result in sorted(results.items()):
            overheard = sum(n.traffic.overheard
                            for n in result.nodes.values())
            corrupted = sum(n.traffic.corrupted
                            for n in result.nodes.values())
            delivered = sum(n.traffic.data_tx
                            for n in result.nodes.values())
            lines.append(
                f"  {ban_name}: {delivered} data frames sent, "
                f"{overheard} overheard, {corrupted} corrupted at nodes")
        lines.append(
            f"  channel total collision corruptions: "
            f"{self.collisions_detected}")
        return "\n".join(lines)


def _run_multi_worker(params: Mapping[str, Any]
                      ) -> Dict[str, NetworkEnergyResult]:
    """Build and run one multi-BAN scenario (module-level: picklable)."""
    return MultiBanScenario(**params).run()


def run_multi_batch(param_sets: Sequence[Mapping[str, Any]],
                    jobs: Optional[int] = 1,
                    ) -> List[Dict[str, NetworkEnergyResult]]:
    """Run several independent multi-BAN studies, optionally in parallel.

    A single :class:`MultiBanScenario` cannot be parallelised — its
    BANs share one simulator and one ether — but a *batch* of them
    (e.g. an interference study sweeping stagger offsets or RF channel
    plans) is embarrassingly parallel.

    Args:
        param_sets: one :class:`MultiBanScenario` keyword mapping per
            study (``configs``, ``stagger_ms``, ``seed``, ...).
        jobs: worker processes (``None`` = CPU count); results are in
            ``param_sets`` order either way.
    """
    # Imported lazily: ``repro.exec`` is the batch layer above this
    # package, and importing it here at module scope would tie the
    # ``repro.net`` import graph to it for every single-scenario user.
    from ..exec import ScenarioExecutor
    return ScenarioExecutor(jobs=jobs).map(_run_multi_worker,
                                           list(param_sets))


__all__ = ["MultiBanScenario", "run_multi_batch"]
