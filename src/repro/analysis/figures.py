"""Figure regeneration (text/CSV renderers, no plotting dependency).

The paper has one results figure, Figure 4: stacked radio+MCU energy of
ECG streaming (30 ms cycle) next to Rpeak (120 ms cycle), for both the
hardware measurement and the simulator.  :func:`render_figure4` draws
the same four stacked bars as ASCII art and prints the headline saving;
:func:`figure4_series` exposes the underlying series for plotting or
CSV export.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..data.paper_tables import FIGURE_4
from .experiments import ExperimentResult, Figure4Result


def figure4_series(result: Figure4Result) -> List[Dict[str, object]]:
    """The figure's data: one record per bar (paper real/sim + ours)."""
    records: List[Dict[str, object]] = []
    scale = result.measure_s / 60.0  # paper bars are 60 s figures
    for bar in FIGURE_4:
        records.append({
            "application": bar.label,
            "source": bar.source,
            "radio_mj": bar.radio_mj * scale,
            "mcu_mj": bar.mcu_mj * scale,
            "total_mj": bar.total_mj * scale,
        })
    records.append({
        "application": "ECG streaming", "source": "ours",
        "radio_mj": result.streaming_radio_mj,
        "mcu_mj": result.streaming_mcu_mj,
        "total_mj": result.streaming_total_mj,
    })
    records.append({
        "application": "Rpeak", "source": "ours",
        "radio_mj": result.rpeak_radio_mj,
        "mcu_mj": result.rpeak_mcu_mj,
        "total_mj": result.rpeak_total_mj,
    })
    return records


def figure4_csv(result: Figure4Result) -> str:
    """The figure's data as CSV text."""
    lines = ["application,source,radio_mj,mcu_mj,total_mj"]
    for record in figure4_series(result):
        lines.append(
            f"{record['application']},{record['source']},"
            f"{record['radio_mj']:.1f},{record['mcu_mj']:.1f},"
            f"{record['total_mj']:.1f}")
    return "\n".join(lines)


def _bar(value: float, scale: float, width: int = 50) -> str:
    filled = round(width * value / scale) if scale > 0 else 0
    return "#" * max(0, min(width, filled))


def render_figure4(result: Figure4Result) -> str:
    """ASCII rendition of Figure 4, ours appended to the paper's bars."""
    records = figure4_series(result)
    scale = max(r["total_mj"] for r in records)  # type: ignore[type-var]
    lines = [
        "Figure 4: ECG streaming (30 ms) vs Rpeak (120 ms), "
        f"radio+uC energy over {result.measure_s:.0f} s",
        "",
    ]
    for record in records:
        label = f"{record['application']:<14} {record['source']:<5}"
        total = float(record["total_mj"])  # type: ignore[arg-type]
        lines.append(
            f"  {label} |{_bar(total, float(scale)):<50}| "
            f"{total:7.1f} mJ  (radio {record['radio_mj']:.1f} "
            f"+ uC {record['mcu_mj']:.1f})")
    lines.append("")
    lines.append(
        f"  on-node preprocessing saving: ours "
        f"{100 * result.saving:.0f}%  (paper: "
        f"{100 * result.paper_saving:.0f}%: "
        f"{result.paper_streaming_total_mj:.1f} mJ -> "
        f"{result.paper_rpeak_total_mj:.1f} mJ)")
    return "\n".join(lines)


def table_series(experiment: ExperimentResult
                 ) -> Tuple[List[float], Dict[str, List[float]]]:
    """Generic series extraction for any reproduced table.

    Returns (parameters, {series name: values}) — convenient for
    plotting the table as the line chart it implicitly is.
    """
    parameters = [row.parameter for row in experiment.rows]
    series = {
        "radio_real_mj": [r.radio_real_mj for r in experiment.rows],
        "radio_paper_sim_mj": [r.radio_paper_sim_mj
                               for r in experiment.rows],
        "radio_ours_mj": [r.radio_ours_mj for r in experiment.rows],
        "mcu_real_mj": [r.mcu_real_mj for r in experiment.rows],
        "mcu_paper_sim_mj": [r.mcu_paper_sim_mj for r in experiment.rows],
        "mcu_ours_mj": [r.mcu_ours_mj for r in experiment.rows],
    }
    return parameters, series


__all__ = ["figure4_series", "figure4_csv", "render_figure4",
           "table_series"]
