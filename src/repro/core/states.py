"""Power-state definitions.

The paper's energy model is *time-in-state*: each hardware component is,
at any instant, in exactly one power state with a characteristic current
draw, and its energy is ``E = I * Vdd * t`` summed over the intervals
spent in each state (Section 4.1 of the paper).

:class:`PowerState` couples a state name with its current; component
models declare a :class:`PowerStateTable` of the states they support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator


@dataclass(frozen=True)
class PowerState:
    """One power state of a hardware component.

    Attributes:
        name: identifier unique within the component (e.g. ``"rx"``).
        current_a: current drawn in this state, in amperes.
    """

    name: str
    current_a: float

    def __post_init__(self) -> None:
        if self.current_a < 0:
            raise ValueError(
                f"state {self.name!r}: current must be >= 0, "
                f"got {self.current_a}")

    def power_w(self, supply_v: float) -> float:
        """Power drawn in this state at supply voltage ``supply_v``."""
        return self.current_a * supply_v


class PowerStateTable:
    """The set of power states a component supports, indexed by name."""

    def __init__(self, states: Iterable[PowerState]) -> None:
        self._states: Dict[str, PowerState] = {}
        for state in states:
            if state.name in self._states:
                raise ValueError(f"duplicate power state {state.name!r}")
            self._states[state.name] = state
        if not self._states:
            raise ValueError("a component needs at least one power state")

    def __getitem__(self, name: str) -> PowerState:
        try:
            return self._states[name]
        except KeyError:
            raise KeyError(
                f"unknown power state {name!r}; "
                f"known: {sorted(self._states)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __iter__(self) -> Iterator[PowerState]:
        return iter(self._states.values())

    def names(self) -> Iterator[str]:
        """Iterate over state names."""
        return iter(self._states.keys())


__all__ = ["PowerState", "PowerStateTable"]
