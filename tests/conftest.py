"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.phy.channel import Channel
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def cal():
    """The default (paper) calibration."""
    return DEFAULT_CALIBRATION


@pytest.fixture
def channel(sim) -> Channel:
    """A perfect, fully connected channel on the fixture simulator."""
    return Channel(sim)


def quick_config(**overrides) -> BanScenarioConfig:
    """A short-horizon scenario config for integration tests.

    Defaults: static TDMA, streaming, 3 nodes, 30 ms cycle, 3 s window.
    """
    params = dict(mac="static", app="ecg_streaming", num_nodes=3,
                  cycle_ms=30.0, measure_s=3.0, seed=7)
    params.update(overrides)
    return BanScenarioConfig(**params)


def run_quick(**overrides):
    """Build and run a quick scenario; returns (scenario, result)."""
    scenario = BanScenario(quick_config(**overrides))
    result = scenario.run()
    return scenario, result
