"""Multi-channel EEG streaming with on-node decimation.

The platform's headline sensing capability is "up to 24 channels
Electroencephalogram" (Section 3), but a 24-channel raw stream
(24 x 12 bit x 256 Hz ~ 74 kbit/s) cannot fit the TDMA link budget the
case studies use (18 bytes per tens-of-milliseconds cycle ~ 5 kbit/s).
Real EEG nodes therefore reduce data on-node; this application models
the two standard reductions:

* **channel selection** — acquire every connected channel, transmit a
  configured subset (montage);
* **decimation** — average blocks of ``decimation`` consecutive samples
  per transmitted channel before queueing, trading bandwidth for
  temporal resolution.

Energy-wise the acquisition cost scales with *acquired* channels while
the radio cost is the fixed per-cycle payload, so the app exposes
exactly the compute-vs-transmit trade-off the paper's Figure 4 makes
for ECG.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.calibration import ModelCalibration
from ..hw.adc import Adc12
from ..hw.asic import BiopotentialAsic
from ..mac.base import AppPayload, NodeMac
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from ..tinyos.scheduler import TaskScheduler
from .base import SamplingApplication
from .ecg_streaming import codes_per_payload, pack_codes

#: Typical clinical EEG sampling rate [Hz].
DEFAULT_EEG_SAMPLING_HZ = 256.0


class EegStreamingApp(SamplingApplication):
    """Stream a decimated subset of EEG channels to the base station.

    Args:
        channels: ASIC channels *acquired* every sample period.
        transmit_channels: subset whose (decimated) codes are queued for
            the radio; defaults to all acquired channels.
        decimation: block size for the per-channel moving average
            (1 = raw samples).
        payload_bytes: fixed per-cycle radio payload.
    """

    def __init__(self, sim: Simulator, scheduler: TaskScheduler,
                 asic: BiopotentialAsic, adc: Adc12, mac: NodeMac,
                 calibration: ModelCalibration,
                 channels: Sequence[int],
                 sampling_hz: float = DEFAULT_EEG_SAMPLING_HZ,
                 transmit_channels: Optional[Sequence[int]] = None,
                 decimation: int = 4,
                 payload_bytes: int = 18,
                 name: str = "eeg_stream",
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, scheduler, asic, adc, mac, calibration,
                         channels, sampling_hz, name=name, trace=trace)
        if decimation < 1:
            raise ValueError(f"{name}: decimation must be >= 1, "
                             f"got {decimation}")
        if payload_bytes <= 0:
            raise ValueError(f"{name}: payload must be positive")
        selected = tuple(transmit_channels) if transmit_channels \
            else self.channels
        unknown = [c for c in selected if c not in self.channels]
        if unknown:
            raise ValueError(
                f"{name}: transmit channels {unknown} are not acquired "
                f"(acquired: {list(self.channels)})")
        self.transmit_channels = selected
        self.decimation = decimation
        self.payload_bytes = payload_bytes
        self._capacity = codes_per_payload(payload_bytes)
        self._accumulators: Dict[int, List[int]] = \
            {c: [] for c in selected}
        self._buffer: Deque[int] = deque(maxlen=16 * self._capacity)
        self.packets_provided = 0
        self.codes_sent = 0
        self.codes_dropped = 0

    # ------------------------------------------------------------------
    @property
    def effective_rate_hz(self) -> float:
        """Post-decimation code rate per transmitted channel."""
        return self.sampling_hz / self.decimation

    @property
    def buffered_codes(self) -> int:
        """Decimated codes awaiting transmission."""
        return len(self._buffer)

    def required_payload_rate_bps(self) -> float:
        """Link rate (payload bits/s) the configuration needs."""
        return (len(self.transmit_channels) * self.effective_rate_hz
                * 12.0)

    # ------------------------------------------------------------------
    def handle_samples(self, codes: Tuple[int, ...]) -> None:
        for channel, code in zip(self.channels, codes):
            accumulator = self._accumulators.get(channel)
            if accumulator is None:
                continue  # acquired but not transmitted
            accumulator.append(code)
            if len(accumulator) >= self.decimation:
                average = round(sum(accumulator) / len(accumulator))
                accumulator.clear()
                if len(self._buffer) == self._buffer.maxlen:
                    self.codes_dropped += 1
                self._buffer.append(average)

    def next_payload(self) -> Optional[AppPayload]:
        take = min(len(self._buffer), self._capacity)
        codes = [self._buffer.popleft() for _ in range(take)]
        self.packets_provided += 1
        self.codes_sent += take
        content = {
            "kind": "eeg_stream",
            "codes": codes,
            "packed": pack_codes(codes),
            "channels": self.transmit_channels,
            "decimation": self.decimation,
        }
        return (self.payload_bytes, content)


__all__ = ["DEFAULT_EEG_SAMPLING_HZ", "EegStreamingApp"]
