"""Ablation A8: the ShockBurst claim — air rate vs energy.

Section 3.1: "The ShockBurst technology uses an on-chip FIFO to clock
in data at a low data rate and transmit at a very high rate thus
enabling extreme power reduction."  The counterfactual is transmitting
at the *low* rate directly (a 250 kbit/s radio, or the nRF2401's slow
mode): every frame spends 4x longer on air, and — because receivers
must keep their windows open for the longer beacons too — the guard
windows grow as well.

This ablation re-runs Table 1 row 1 and Table 3 row 4 with the air
rate swept {1 Mbit/s, 250 kbit/s} and quantifies the saving ShockBurst
buys at the system level (not just per frame).
"""

import dataclasses

from conftest import bench_measure_s, run_once
from repro.net.scenario import BanScenario, BanScenarioConfig

AIR_RATES = (1_000_000.0, 250_000.0)


def run_sweep(measure_s: float):
    scenarios = {
        "streaming@30ms": dict(mac="static", app="ecg_streaming",
                               num_nodes=5, cycle_ms=30.0,
                               sampling_hz=205.0),
        "rpeak@120ms": dict(mac="static", app="rpeak", num_nodes=5,
                            cycle_ms=120.0),
    }
    results = {}
    for label, params in scenarios.items():
        per_rate = {}
        for rate in AIR_RATES:
            config = BanScenarioConfig(measure_s=measure_s, **params)
            timing = dataclasses.replace(config.calibration.radio_timing,
                                         bitrate_bps=rate)
            config = dataclasses.replace(
                config,
                calibration=dataclasses.replace(config.calibration,
                                                radio_timing=timing))
            per_rate[rate] = BanScenario(config).run().node("node1")
        results[label] = per_rate
    return results


def test_ablation_shockburst_air_rate(benchmark):
    measure_s = bench_measure_s()
    results = run_once(benchmark, run_sweep, measure_s)

    print(f"\nA8 ShockBurst air-rate ablation ({measure_s:.0f} s):")
    for label, per_rate in results.items():
        fast = per_rate[1_000_000.0]
        slow = per_rate[250_000.0]
        saving = 1.0 - fast.radio_mj / slow.radio_mj
        print(f"  {label:<16} radio {slow.radio_mj:7.1f} mJ @250k -> "
              f"{fast.radio_mj:7.1f} mJ @1M  "
              f"(burst saves {100 * saving:.0f}%)")
        benchmark.extra_info[f"saving_{label}"] = round(saving, 3)

        # The high rate always wins, for TX and the window alike.
        assert fast.radio_mj < slow.radio_mj
        # TX-side: frames are 4x shorter on air; the whole TX event
        # (settle + air + tail) shrinks accordingly.
        assert fast.radio_by_state_mj.get("tx", 0.0) \
            < slow.radio_by_state_mj.get("tx", 0.0)

    # Streaming (a frame every cycle) benefits more than Rpeak (rare
    # frames; mostly window time).
    streaming_saving = 1.0 - (
        results["streaming@30ms"][1_000_000.0].radio_mj
        / results["streaming@30ms"][250_000.0].radio_mj)
    rpeak_saving = 1.0 - (
        results["rpeak@120ms"][1_000_000.0].radio_mj
        / results["rpeak@120ms"][250_000.0].radio_mj)
    assert streaming_saving > rpeak_saving > 0.0
