"""Signal-source primitives.

A *signal source* is anything with a ``value_at(t_seconds) -> float``
method returning the instantaneous analog value (volts at the ASIC
output).  Sources must be **pure functions of time** so that simulation
results are reproducible and independent of sampling order; stochastic
sources therefore derive their randomness from a hash of (seed, t)
instead of mutable generator state.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Optional, Protocol, Sequence


class SignalSource(Protocol):
    """Structural type every channel source implements."""

    def value_at(self, t_seconds: float) -> float:
        """Instantaneous value at absolute time ``t_seconds``."""
        ...  # pragma: no cover - protocol


class ConstantSource:
    """A DC level (unconnected inputs, calibration signals)."""

    def __init__(self, level: float = 0.0) -> None:
        self.level = level

    def value_at(self, t_seconds: float) -> float:
        return self.level


class SineSource:
    """A pure tone: ``amplitude * sin(2*pi*f*t + phase) + offset``."""

    def __init__(self, frequency_hz: float, amplitude: float = 1.0,
                 phase_rad: float = 0.0, offset: float = 0.0) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive: {frequency_hz}")
        self.frequency_hz = frequency_hz
        self.amplitude = amplitude
        self.phase_rad = phase_rad
        self.offset = offset

    def value_at(self, t_seconds: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency_hz * t_seconds + self.phase_rad)


class HashNoiseSource:
    """Deterministic white-ish noise: a pure function of (seed, t).

    The time axis is quantised to ``resolution_s`` and hashed; two reads
    at the same instant always agree, and the sequence is independent of
    read order.  Amplitude is uniform in [-amplitude, +amplitude].
    """

    def __init__(self, amplitude: float, seed: int = 0,
                 resolution_s: float = 1e-6) -> None:
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0: {amplitude}")
        if resolution_s <= 0:
            raise ValueError(f"resolution must be positive: {resolution_s}")
        self.amplitude = amplitude
        self.seed = seed
        self.resolution_s = resolution_s
        # One-entry memo over the quantised time axis: sources are pure
        # functions of time, and co-located channels sample the same
        # instants back to back.
        self._memo_q: Optional[int] = None
        self._memo_v: float = 0.0

    def value_at(self, t_seconds: float) -> float:
        if self.amplitude == 0.0:
            return 0.0
        quantised = round(t_seconds / self.resolution_s)
        if quantised == self._memo_q:
            return self._memo_v
        digest = hashlib.blake2b(
            struct.pack("<qq", self.seed, quantised),
            digest_size=8).digest()
        unit = int.from_bytes(digest, "little") / float(1 << 64)
        value = self.amplitude * (2.0 * unit - 1.0)
        self._memo_q = quantised
        self._memo_v = value
        return value


class MixSource:
    """Weighted sum of sources (e.g. signal + baseline wander + noise)."""

    def __init__(self, sources: Sequence[SignalSource],
                 weights: Sequence[float] = ()) -> None:
        if not sources:
            raise ValueError("MixSource needs at least one source")
        if weights and len(weights) != len(sources):
            raise ValueError(
                f"{len(weights)} weights for {len(sources)} sources")
        self._sources = list(sources)
        self._weights = list(weights) if weights else [1.0] * len(sources)
        # One-entry memo (sources are pure functions of time; multiple
        # ASIC channels wrapping the same mix sample the same instants).
        self._memo_t: float = math.nan
        self._memo_v: float = 0.0

    def value_at(self, t_seconds: float) -> float:
        # lint: allow(FLT001): exact-identity memo hit, not a tolerance
        if t_seconds == self._memo_t:
            return self._memo_v
        value = sum(w * s.value_at(t_seconds)
                    for s, w in zip(self._sources, self._weights))
        self._memo_t = t_seconds
        self._memo_v = value
        return value


class ScaledSource:
    """``gain * inner(t) + offset`` — e.g. the ASIC amplifier stage."""

    def __init__(self, inner: SignalSource, gain: float = 1.0,
                 offset: float = 0.0) -> None:
        self._inner = inner
        self.gain = gain
        self.offset = offset

    def value_at(self, t_seconds: float) -> float:
        return self.gain * self._inner.value_at(t_seconds) + self.offset


__all__ = [
    "SignalSource",
    "ConstantSource",
    "SineSource",
    "HashNoiseSource",
    "MixSource",
    "ScaledSource",
]
