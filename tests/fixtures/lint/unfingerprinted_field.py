"""Seeded-bug fixture: config state the cache fingerprint cannot see.

Linted with ``module_path="net/unfingerprinted_field.py"`` so the FPC
pass treats it as salted simulation code.  Two cache-poisoning shapes:

* ``BanScenarioConfig.debug_gain`` is set in ``__post_init__`` but is
  **not** a dataclass field, so ``config_fingerprint`` never encodes
  it — two configs differing only in ``debug_gain`` hash identically
  (FPC001 at the read site).
* ``TuningConfig`` is a config dataclass the simulation reads, but it
  is neither reachable from the fingerprint closure nor constructed
  inside simulation code: its values bypass the cache key entirely
  (FPC002 at the class definition).
"""

from dataclasses import dataclass


@dataclass
class BanScenarioConfig:
    """Fixture twin of the real scenario config (closure root)."""

    mac: str = "static"
    seed: int = 0
    measure_s: float = 60.0

    def __post_init__(self) -> None:
        self.debug_gain = 1.0  # assigned, but not a field


@dataclass(frozen=True)
class TuningConfig:
    """Config-shaped dataclass that never joins the fingerprint."""

    gain: float = 1.0


def simulated_energy(config: BanScenarioConfig,
                     tuning: TuningConfig) -> float:
    """Simulation code reading both poisoning shapes."""
    base = config.measure_s  # fine: a fingerprinted field
    return base * config.debug_gain * tuning.gain
