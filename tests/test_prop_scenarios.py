"""Property-based tests over randomly drawn scenario configurations.

Hypothesis draws small-but-varied BAN configurations and checks the
invariants that must hold for *every* configuration: time partition,
energy attribution conservation, TDMA collision-freedom, and the
analytic model's agreement in the nominal case.  Windows are kept short
(1-2 s) so the suite stays fast.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.closed_form import predict
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.sim.simtime import seconds

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])

static_configs = st.builds(
    BanScenarioConfig,
    mac=st.just("static"),
    app=st.sampled_from(["ecg_streaming", "rpeak"]),
    num_nodes=st.integers(min_value=1, max_value=5),
    cycle_ms=st.sampled_from([30.0, 60.0, 90.0, 120.0]),
    measure_s=st.just(1.5),
    seed=st.integers(min_value=0, max_value=10_000),
)

dynamic_configs = st.builds(
    BanScenarioConfig,
    mac=st.just("dynamic"),
    app=st.sampled_from(["ecg_streaming", "rpeak"]),
    num_nodes=st.integers(min_value=1, max_value=5),
    slot_ms=st.sampled_from([10.0, 15.0]),
    measure_s=st.just(1.5),
    seed=st.integers(min_value=0, max_value=10_000),
)

any_configs = st.one_of(static_configs, dynamic_configs)


class TestScenarioInvariants:
    @given(any_configs)
    @SLOW
    def test_energy_attribution_conserved(self, config):
        result = BanScenario(config).run()
        for node in result.nodes.values():
            assert node.losses.total_j * 1e3 \
                == pytest.approx(node.radio_mj, rel=1e-9, abs=1e-12)

    @given(any_configs)
    @SLOW
    def test_mcu_time_partitions_to_horizon(self, config):
        scenario = BanScenario(config)
        scenario.run()
        for node in scenario.nodes:
            assert node.mcu.ledger.ticks_in() \
                == seconds(config.measure_s)

    @given(any_configs)
    @SLOW
    def test_tdma_is_collision_free(self, config):
        scenario = BanScenario(config)
        scenario.run()
        assert scenario.channel.collisions_detected == 0
        for node in scenario.nodes:
            assert node.radio.snapshot_counters().corrupted == 0

    @given(static_configs)
    @SLOW
    def test_simulator_matches_analytic_streaming(self, config):
        if config.app != "ecg_streaming":
            return  # Rpeak has detection-timing slack; covered below
        result = BanScenario(config).run()
        prediction = predict(config)
        node = result.node("node1")
        # Short windows hold a fractional cycle count; the realised
        # beacon-window count can differ from the analytic one by one,
        # so tolerate ~1.5 windows' worth of energy.
        cycles = config.measure_s / (config.cycle_ticks / 1e9)
        tolerance = 1.5 / cycles + 0.005
        assert node.radio_mj == pytest.approx(prediction.radio_mj,
                                              rel=tolerance)
        assert node.mcu_mj == pytest.approx(prediction.mcu_mj,
                                            rel=tolerance)

    @given(any_configs)
    @SLOW
    def test_every_node_reported_and_positive(self, config):
        result = BanScenario(config).run()
        assert len(result.nodes) == config.num_nodes
        for node in result.nodes.values():
            assert node.radio_mj > 0
            assert node.mcu_mj > 0
            assert node.asic_mj == pytest.approx(
                10.5 * config.measure_s, rel=1e-6)

    @given(static_configs, st.integers(min_value=0, max_value=3))
    @SLOW
    def test_seed_only_changes_stochastic_scenarios(self, config, bump):
        """Preassigned, lossless scenarios are seed-invariant."""
        import dataclasses
        a = BanScenario(config).run().node("node1").radio_mj
        b = BanScenario(dataclasses.replace(
            config, seed=config.seed + bump)).run().node("node1").radio_mj
        assert a == pytest.approx(b, rel=1e-12)
