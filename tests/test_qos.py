"""Tests for QoS latency measurement and the Pareto tooling."""

import pytest

from repro.analysis.qos import (
    DesignPoint,
    LatencyStats,
    beat_report_latencies,
    evaluate_rpeak_cycles,
    pareto_front,
    render_tradeoff,
)
from repro.net.scenario import BanScenario, BanScenarioConfig


class TestLatencyStats:
    def test_summary(self):
        stats = LatencyStats((0.1, 0.2, 0.3, 0.4))
        assert stats.n == 4
        assert stats.mean == pytest.approx(0.25)
        assert stats.maximum == 0.4
        assert stats.percentile(0.5) == pytest.approx(0.2)
        assert stats.percentile(1.0) == 0.4

    def test_empty(self):
        stats = LatencyStats(())
        assert stats.mean == 0.0 and stats.maximum == 0.0
        assert stats.percentile(0.9) == 0.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyStats((1.0,)).percentile(0.0)


class TestBeatLatency:
    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for cycle_ms in (30.0, 120.0):
            config = BanScenarioConfig(mac="static", app="rpeak",
                                       num_nodes=3, cycle_ms=cycle_ms,
                                       measure_s=15.0)
            scenario = BanScenario(config)
            scenario.run()
            out[cycle_ms] = scenario
        return out

    def test_latencies_measured(self, runs):
        stats = beat_report_latencies(runs[120.0])
        assert stats.n > 10
        assert all(sample > 0 for sample in stats.samples)

    def test_latency_bounded_by_cycles(self, runs):
        """A report waits at most ~a cycle for the slot (plus a queue
        of at most a couple of reports)."""
        for cycle_ms, scenario in runs.items():
            stats = beat_report_latencies(scenario)
            assert stats.maximum < 4 * cycle_ms * 1e-3

    def test_longer_cycle_means_longer_latency(self, runs):
        fast = beat_report_latencies(runs[30.0])
        slow = beat_report_latencies(runs[120.0])
        assert slow.mean > 1.5 * fast.mean

    def test_unknown_node_gives_empty(self, runs):
        assert beat_report_latencies(runs[30.0], "ghost").n == 0


class TestPareto:
    def test_front_filters_dominated(self):
        points = [
            DesignPoint("a", energy_mj=10.0, latency_s=0.1),
            DesignPoint("b", energy_mj=20.0, latency_s=0.05),
            DesignPoint("c", energy_mj=25.0, latency_s=0.07),  # dominated by b
            DesignPoint("d", energy_mj=5.0, latency_s=0.2),
        ]
        front = pareto_front(points)
        assert [p.label for p in front] == ["d", "a", "b"]

    def test_front_of_single_point(self):
        point = DesignPoint("only", 1.0, 1.0)
        assert pareto_front([point]) == [point]

    def test_equal_points_both_survive(self):
        a = DesignPoint("a", 1.0, 1.0)
        b = DesignPoint("b", 1.0, 1.0)
        assert len(pareto_front([a, b])) == 2

    def test_rpeak_cycle_sweep_is_a_true_tradeoff(self):
        """Energy falls and latency rises with the cycle, so *every*
        swept cycle is Pareto-optimal — the knob is a clean frontier."""
        points = evaluate_rpeak_cycles((30.0, 60.0, 120.0),
                                       measure_s=10.0, num_nodes=3)
        energies = [p.energy_mj for p in points]
        latencies = [p.latency_s for p in points]
        assert energies == sorted(energies, reverse=True)
        assert latencies == sorted(latencies)
        assert len(pareto_front(points)) == 3

    def test_render(self):
        points = [DesignPoint("a", 10.0, 0.1),
                  DesignPoint("b", 5.0, 0.2)]
        text = render_tradeoff(points)
        assert "Pareto" in text and "a" in text and "*" in text
