"""Integration tests for the TDMA MACs over the full radio/OS stack.

These build small networks by hand (base station + nodes + stub
payload providers) to check protocol behaviour precisely: beacon
cadence, slot timing, join handshakes, grant observation, miss/resync
handling and the energy-defining beacon windows.
"""

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.hw.mcu import Msp430
from repro.hw.radio import Nrf2401
from repro.mac.base import NodeState
from repro.mac.sync import FixedLead
from repro.mac.tdma_dynamic import (
    DynamicTdmaBaseMac,
    DynamicTdmaConfig,
    DynamicTdmaNodeMac,
)
from repro.mac.tdma_static import (
    StaticTdmaBaseMac,
    StaticTdmaConfig,
    StaticTdmaNodeMac,
)
from repro.phy.channel import Channel
from repro.phy.lossmodels import UniformLoss
from repro.sim.kernel import Simulator
from repro.sim.simtime import milliseconds, seconds
from repro.tinyos.scheduler import TaskScheduler

CAL = DEFAULT_CALIBRATION


class Harness:
    """Hand-built BS + N nodes with stub applications."""

    def __init__(self, sim, mac="static", num_nodes=2, cycle_ms=30.0,
                 slot_ms=10.0, preassign=True, loss_model=None,
                 payload=None):
        self.sim = sim
        self.channel = Channel(sim, loss_model=loss_model)
        self.bs_mcu = Msp430(sim, CAL, name="bs.mcu")
        self.bs_sched = TaskScheduler(sim, self.bs_mcu, name="bs.sched")
        self.bs_radio = Nrf2401(sim, CAL, self.channel, "base_station",
                                name="bs.radio")
        if mac == "static":
            self.config = StaticTdmaConfig(
                cycle_ticks=milliseconds(cycle_ms), num_slots=num_nodes)
            self.bs_mac = StaticTdmaBaseMac(
                sim, self.bs_radio, self.bs_sched, CAL, self.config)
        else:
            self.config = DynamicTdmaConfig(
                slot_ticks=milliseconds(slot_ms),
                initial_assigned=(num_nodes if preassign else 0))
            self.bs_mac = DynamicTdmaBaseMac(
                sim, self.bs_radio, self.bs_sched, CAL, self.config)
        self.delivered = []
        self.bs_mac.data_sink = self.delivered.append

        self.node_macs = []
        self.node_radios = []
        for index in range(1, num_nodes + 1):
            node_id = f"node{index}"
            mcu = Msp430(sim, CAL, name=f"{node_id}.mcu")
            sched = TaskScheduler(sim, mcu, name=f"{node_id}.sched")
            radio = Nrf2401(sim, CAL, self.channel, node_id,
                            name=f"{node_id}.radio")
            slot = index if preassign else None
            if mac == "static":
                node_mac = StaticTdmaNodeMac(
                    sim, radio, sched, CAL, self.config,
                    preassigned_slot=slot)
            else:
                node_mac = DynamicTdmaNodeMac(
                    sim, radio, sched, CAL, self.config,
                    preassigned_slot=slot)
            if preassign:
                self.bs_mac.schedule.assign(index, node_id)
            node_mac.payload_provider = payload or (lambda: (18, {"d": 1}))
            self.node_macs.append(node_mac)
            self.node_radios.append(radio)

    def start(self):
        self.bs_mac.start()
        for node_mac in self.node_macs:
            node_mac.start()


class TestStaticSteadyState:
    def test_beacons_and_data_flow(self, sim):
        harness = Harness(sim, mac="static", num_nodes=2)
        harness.start()
        sim.run_until(seconds(1.0))
        # ~33 cycles in 1 s at 30 ms; both nodes send every cycle.
        assert harness.bs_mac.counters.beacons_sent >= 32
        assert len(harness.delivered) >= 60
        sources = {frame.src for frame in harness.delivered}
        assert sources == {"node1", "node2"}

    def test_node_receives_every_beacon(self, sim):
        harness = Harness(sim, mac="static", num_nodes=1)
        harness.start()
        sim.run_until(seconds(1.0))
        mac = harness.node_macs[0]
        assert mac.counters.beacons_received \
            == harness.bs_mac.counters.beacons_sent
        assert mac.counters.beacons_missed == 0

    def test_no_collisions_in_steady_state(self, sim):
        harness = Harness(sim, mac="static", num_nodes=5)
        harness.start()
        sim.run_until(seconds(1.0))
        assert harness.channel.collisions_detected == 0

    def test_slot_timing_separates_nodes(self, sim):
        """Data frames from different slots must never overlap."""
        harness = Harness(sim, mac="static", num_nodes=5)
        harness.start()
        sim.run_until(seconds(1.0))
        for radio in harness.node_radios:
            assert radio.snapshot_counters().corrupted == 0

    def test_empty_payload_skips_slot(self, sim):
        harness = Harness(sim, mac="static", num_nodes=1,
                          payload=lambda: None)
        harness.start()
        sim.run_until(seconds(1.0))
        assert harness.delivered == []
        assert harness.node_radios[0].snapshot_counters().data_tx == 0

    def test_beacon_window_matches_calibration(self, sim):
        """Realised RX window == lead + beacon airtime + RX tail."""
        harness = Harness(sim, mac="static", num_nodes=1,
                          payload=lambda: None)
        harness.start()
        sim.run_until(seconds(10.0))
        mac = harness.node_macs[0]
        radio = harness.node_radios[0]
        beacons = mac.counters.beacons_received
        rx_seconds = radio.ledger.seconds_in(state="rx")
        window = CAL.sync.static_lead_s \
            + CAL.radio_timing.airtime_s(4 + 1) \
            + CAL.radio_timing.rx_tail_s
        # First acquisition window differs slightly; compare per-beacon.
        assert rx_seconds / beacons == pytest.approx(window, rel=0.02)


class TestStaticJoin:
    def test_single_node_joins(self, sim):
        harness = Harness(sim, mac="static", num_nodes=1, preassign=False)
        harness.start()
        sim.run_until(seconds(2.0))
        mac = harness.node_macs[0]
        assert mac.state is NodeState.SYNCED
        assert mac.slot == 1
        assert mac.counters.slot_requests_sent >= 1
        assert mac.counters.grants_observed == 1
        assert harness.bs_mac.counters.slot_requests_received >= 1

    def test_five_nodes_all_join_distinct_slots(self, sim):
        harness = Harness(sim, mac="static", num_nodes=5, preassign=False)
        harness.start()
        sim.run_until(seconds(5.0))
        slots = [mac.slot for mac in harness.node_macs]
        assert all(mac.state is NodeState.SYNCED
                   for mac in harness.node_macs)
        assert sorted(slots) == [1, 2, 3, 4, 5]

    def test_join_then_data_flows(self, sim):
        harness = Harness(sim, mac="static", num_nodes=2, preassign=False)
        harness.start()
        sim.run_until(seconds(5.0))
        assert {frame.src for frame in harness.delivered} \
            == {"node1", "node2"}

    def test_network_full_rejects_extra_node(self, sim):
        harness = Harness(sim, mac="static", num_nodes=1, preassign=True)
        # A second node wants in, but the single slot is taken.
        mcu = Msp430(sim, CAL, name="late.mcu")
        sched = TaskScheduler(sim, mcu, name="late.sched")
        radio = Nrf2401(sim, CAL, harness.channel, "late",
                        name="late.radio")
        late = StaticTdmaNodeMac(sim, radio, sched, CAL, harness.config)
        late.payload_provider = lambda: None
        harness.start()
        late.start()
        sim.run_until(seconds(3.0))
        assert late.state is NodeState.JOINING
        assert late.slot is None


class TestDynamicSteadyState:
    def test_cycle_matches_network_size(self, sim):
        harness = Harness(sim, mac="dynamic", num_nodes=3)
        harness.start()
        sim.run_until(seconds(1.0))
        assert harness.bs_mac.current_cycle_ticks() == milliseconds(40)
        assert harness.node_macs[0].cycle_ticks == milliseconds(40)

    def test_data_flow(self, sim):
        harness = Harness(sim, mac="dynamic", num_nodes=2)
        harness.start()
        sim.run_until(seconds(1.0))
        # 30 ms cycle -> ~33 packets per node per second.
        assert len(harness.delivered) >= 60

    def test_beacon_payload_grows_with_slots(self, sim):
        harness = Harness(sim, mac="dynamic", num_nodes=4)
        harness.start()
        seen_sizes = []
        harness.node_macs[0].on_beacon = \
            lambda payload: seen_sizes.append(payload.num_slots)
        sim.run_until(seconds(0.5))
        assert set(seen_sizes) == {4}


class TestDynamicJoin:
    def test_cycle_grows_as_nodes_join(self, sim):
        harness = Harness(sim, mac="dynamic", num_nodes=3,
                          preassign=False)
        harness.start()
        sim.run_until(seconds(5.0))
        assert all(mac.state is NodeState.SYNCED
                   for mac in harness.node_macs)
        # 3 joined nodes -> 3 slots -> 40 ms cycle.
        assert harness.bs_mac.current_cycle_ticks() == milliseconds(40)
        assert sorted(mac.slot for mac in harness.node_macs) == [1, 2, 3]

    def test_ssr_collisions_eventually_resolve(self, sim):
        """Several nodes starting simultaneously contend in the same ES
        window; random offsets must eventually de-conflict them."""
        harness = Harness(sim, mac="dynamic", num_nodes=5,
                          preassign=False)
        harness.start()
        sim.run_until(seconds(10.0))
        assert all(mac.state is NodeState.SYNCED
                   for mac in harness.node_macs)
        assert sorted(mac.slot for mac in harness.node_macs) \
            == [1, 2, 3, 4, 5]


class TestLossRecovery:
    def test_missed_beacons_free_run_then_resync(self, sim):
        harness = Harness(sim, mac="static", num_nodes=1,
                          loss_model=UniformLoss(0.05),
                          payload=lambda: None)
        harness.start()
        sim.run_until(seconds(20.0))
        mac = harness.node_macs[0]
        assert mac.counters.beacons_missed > 0
        # Free-running across isolated misses: the vast majority of
        # beacons are still received and the node stays synced.
        assert mac.counters.beacons_received \
            > 0.9 * harness.bs_mac.counters.beacons_sent
        assert mac.state is NodeState.SYNCED

    def test_heavy_loss_recovers_via_acquisition(self, sim):
        harness = Harness(sim, mac="static", num_nodes=1,
                          loss_model=UniformLoss(0.3),
                          payload=lambda: None)
        harness.start()
        sim.run_until(seconds(20.0))
        mac = harness.node_macs[0]
        # At 30% loss, 3-in-a-row misses happen regularly: the node must
        # fall back to acquisition and re-join, repeatedly and
        # successfully (grants track resyncs).
        assert mac.counters.resyncs >= 3
        assert mac.counters.grants_observed >= mac.counters.resyncs - 1
        assert mac.counters.beacons_received \
            > 0.6 * harness.bs_mac.counters.beacons_sent

    def test_total_blackout_triggers_acquisition(self, sim):
        harness = Harness(sim, mac="static", num_nodes=1,
                          loss_model=UniformLoss(1.0),
                          payload=lambda: None)
        harness.start()
        sim.run_until(seconds(3.0))
        mac = harness.node_macs[0]
        assert mac.state is NodeState.ACQUIRING
        assert mac.counters.resyncs >= 1

    def test_data_keeps_flowing_during_free_run(self, sim):
        harness = Harness(sim, mac="static", num_nodes=1,
                          loss_model=UniformLoss(0.2))
        harness.start()
        sim.run_until(seconds(10.0))
        # Beacon losses must not stop the data stream (free-running
        # slots bridge the gaps).  Data frames themselves also take the
        # 20% loss, so expect roughly 0.8 * cycles deliveries minus the
        # occasional resync gap.
        expected_cycles = 10.0 / 0.03
        assert len(harness.delivered) > 0.6 * expected_cycles
