"""Structured comparison of two simulation results.

Every ablation ends with the same question — *what changed?* —
answered by eyeballing two result objects.  :func:`compare_nodes`
makes the diff structured: per-metric absolute and relative deltas,
with a renderer that flags the significant ones.  Works on any two
:class:`~repro.core.report.NodeEnergyResult` (same node across
configurations, or two nodes in one run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.losses import RadioEnergyCategory
from ..core.report import NodeEnergyResult


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric."""

    name: str
    baseline: float
    candidate: float

    @property
    def delta(self) -> float:
        """candidate - baseline."""
        return self.candidate - self.baseline

    @property
    def relative(self) -> float:
        """Fractional change vs the baseline (inf when baseline is 0
        and the candidate is not)."""
        if self.baseline == 0.0:
            return float("inf") if self.candidate else 0.0
        return self.delta / self.baseline

    def is_significant(self, threshold: float = 0.01) -> bool:
        """Whether the relative change exceeds ``threshold``."""
        return abs(self.relative) > threshold


def _metrics_of(node: NodeEnergyResult) -> Dict[str, float]:
    metrics = {
        "radio_mj": node.radio_mj,
        "mcu_mj": node.mcu_mj,
        "total_mj": node.total_mj,
        "avg_power_mw": node.average_power_mw,
        "data_tx": float(node.traffic.data_tx),
        "data_rx": float(node.traffic.data_rx),
        "control_rx": float(node.traffic.control_rx),
        "overheard": float(node.traffic.overheard),
        "corrupted": float(node.traffic.corrupted),
    }
    if node.losses is not None:
        for category in RadioEnergyCategory:
            metrics[f"loss_{category.value}_mj"] = \
                node.losses.energy_j.get(category, 0.0) * 1e3
    return metrics


def compare_nodes(baseline: NodeEnergyResult,
                  candidate: NodeEnergyResult) -> List[MetricDelta]:
    """Per-metric deltas, candidate vs baseline."""
    base = _metrics_of(baseline)
    cand = _metrics_of(candidate)
    return [MetricDelta(name=name, baseline=base[name],
                        candidate=cand.get(name, 0.0))
            for name in base]


def render_comparison(deltas: Sequence[MetricDelta],
                      baseline_label: str = "baseline",
                      candidate_label: str = "candidate",
                      threshold: float = 0.01,
                      show_all: bool = False) -> str:
    """Text diff; by default only metrics that moved past ``threshold``."""
    shown = [d for d in deltas
             if show_all or d.is_significant(threshold)]
    if not shown:
        return (f"no metric moved more than "
                f"{100 * threshold:.0f}% between {baseline_label} and "
                f"{candidate_label}")
    name_width = max(len(d.name) for d in shown)
    lines = [f"{'metric':<{name_width}}  {baseline_label:>12}  "
             f"{candidate_label:>12}  {'change':>9}"]
    for delta in shown:
        if delta.relative == float("inf"):
            change = "new"
        else:
            change = f"{100 * delta.relative:+.1f}%"
        lines.append(f"{delta.name:<{name_width}}  "
                     f"{delta.baseline:>12.2f}  "
                     f"{delta.candidate:>12.2f}  {change:>9}")
    return "\n".join(lines)


__all__ = ["MetricDelta", "compare_nodes", "render_comparison"]
