"""Unit tests for the calibration constants and their derivations."""

import dataclasses

import pytest

from repro.core import calibration as cal


class TestPublishedConstants:
    """The Section 3/4 values must stay exactly as published."""

    def test_supply_voltage(self):
        assert cal.SUPPLY_V == 2.8

    def test_mcu_currents(self):
        assert cal.MCU_ACTIVE_A == pytest.approx(2.0e-3)
        assert cal.MCU_SLEEP_A == pytest.approx(0.66e-3)

    def test_mcu_wakeup_6us(self):
        assert cal.MCU_WAKEUP_S == pytest.approx(6e-6)

    def test_radio_currents(self):
        assert cal.RADIO_RX_A == pytest.approx(24.82e-3)
        assert cal.RADIO_TX_A == pytest.approx(17.54e-3)

    def test_radio_standby_neglected(self):
        assert cal.RADIO_STANDBY_A == 0.0
        assert cal.RADIO_STANDBY_DATASHEET_A < 100e-6

    def test_asic_constant_power(self):
        assert cal.ASIC_POWER_W == pytest.approx(10.5e-3)
        assert cal.ASIC_SUPPLY_V == 3.0

    def test_mcu_max_clock(self):
        assert cal.MCU_CLOCK_HZ == 8_000_000

    def test_energy_per_cycle_near_datasheet(self):
        # 2 mA * 2.8 V / 8 MHz = 0.7 nJ/cycle, same order as the quoted
        # 0.6 nJ/instruction.
        per_cycle = cal.MCU_ACTIVE_A * cal.SUPPLY_V / cal.MCU_CLOCK_HZ
        assert per_cycle == pytest.approx(0.7e-9)


class TestRadioTiming:
    def test_frame_overhead_is_8_bytes(self):
        timing = cal.RadioTiming()
        assert timing.frame_bytes(0) == 8

    def test_case_study_frame_26_bytes(self):
        assert cal.RADIO_TIMING.frame_bytes(18) == 26

    def test_airtime_18_byte_payload(self):
        assert cal.RADIO_TIMING.airtime_s(18) == pytest.approx(208e-6)

    def test_tx_event_duration(self):
        # settle 195 + air 208 + tail 82 = 485 us.
        assert cal.RADIO_TIMING.tx_event_s(18) == pytest.approx(485e-6)

    def test_tx_event_energy_matches_table_fit(self):
        # The streaming-minus-Rpeak per-cycle difference: ~23.8 uJ.
        energy = cal.RADIO_TIMING.tx_event_s(18) * cal.RADIO_TX_A \
            * cal.SUPPLY_V
        assert energy == pytest.approx(23.8e-6, rel=0.01)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            cal.RADIO_TIMING.frame_bytes(-1)


class TestSyncCalibration:
    def test_static_window_matches_fit(self):
        # lead + 9-byte-payload beacon airtime + RX tail ~= 3.28 ms.
        sync = cal.SYNC_CALIBRATION
        window = sync.static_lead_s + cal.RADIO_TIMING.airtime_s(9) \
            + cal.RADIO_TIMING.rx_tail_s
        assert window == pytest.approx(3.28e-3, rel=0.01)

    def test_static_window_energy_near_paper_per_cycle(self):
        sync = cal.SYNC_CALIBRATION
        window = sync.static_lead_s + cal.RADIO_TIMING.airtime_s(9) \
            + cal.RADIO_TIMING.rx_tail_s
        energy = window * cal.RADIO_RX_A * cal.SUPPLY_V
        # Rpeak static: ~0.228 mJ per cycle (Table 3 / cycle count).
        assert energy == pytest.approx(0.228e-3, rel=0.02)

    def test_dynamic_lead_grows_with_cycle(self):
        sync = cal.SYNC_CALIBRATION
        from repro.sim.simtime import milliseconds
        short = sync.dynamic_lead_ticks(milliseconds(20))
        long = sync.dynamic_lead_ticks(milliseconds(60))
        assert long > short
        assert long - short == pytest.approx(
            0.017 * milliseconds(40), rel=0.01)

    def test_static_lead_ticks(self):
        assert cal.SYNC_CALIBRATION.static_lead_ticks() == 3_112_000


class TestMcuCosts:
    def test_streaming_per_cycle_decomposition(self):
        costs = cal.MCU_COSTS
        # beacon (2.24 ms) + packet prep (4.19 ms) = the fitted 6.43 ms.
        total_s = costs.cycles_to_seconds(costs.beacon_processing
                                          + costs.packet_preparation)
        assert total_s == pytest.approx(6.43e-3, rel=0.001)

    def test_rpeak_per_sample_decomposition(self):
        costs = cal.MCU_COSTS
        total_s = costs.cycles_to_seconds(costs.sample_acquisition
                                          + costs.rpeak_algorithm)
        assert total_s == pytest.approx(196.7e-6, rel=0.001)

    def test_sample_acquisition_22us(self):
        costs = cal.MCU_COSTS
        assert costs.cycles_to_seconds(costs.sample_acquisition) \
            == pytest.approx(22e-6)

    def test_costs_are_positive_integers(self):
        costs = cal.MCU_COSTS
        for field in ("beacon_processing", "packet_preparation",
                      "sample_acquisition", "rpeak_algorithm",
                      "packet_reception"):
            value = getattr(costs, field)
            assert isinstance(value, int) and value > 0


class TestModelCalibration:
    def test_default_bundle_consistent(self):
        bundle = cal.DEFAULT_CALIBRATION
        assert bundle.supply_v == cal.SUPPLY_V
        assert bundle.radio_rx_a == cal.RADIO_RX_A
        assert bundle.mcu_costs.beacon_processing \
            == cal.MCU_COSTS.beacon_processing

    def test_replace_builds_variant(self):
        variant = dataclasses.replace(cal.DEFAULT_CALIBRATION,
                                      radio_standby_a=12e-6)
        assert variant.radio_standby_a == 12e-6
        assert cal.DEFAULT_CALIBRATION.radio_standby_a == 0.0

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            cal.DEFAULT_CALIBRATION.supply_v = 3.3
