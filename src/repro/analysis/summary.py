"""One-shot reproduction report.

:func:`full_report` regenerates the paper's whole evaluation — all four
tables, Figure 4 and the validation error summary — plus the analytic
cross-check and a loss-taxonomy digest, as a single text document.
``repro-ban report --out report.txt`` is the command-line wrapper; the
result is what EXPERIMENTS.md summarises, produced fresh.
"""

from __future__ import annotations

from typing import Optional

from ..core.calibration import ModelCalibration
from ..core.losses import RadioEnergyCategory
from ..net.scenario import BanScenario, BanScenarioConfig
from .closed_form import predict
from .experiments import TABLE_REPRODUCERS, reproduce_figure4
from .figures import render_figure4
from .validation import validate_all

#: Banner width for section separators.
WIDTH = 72


def _section(title: str) -> str:
    return f"\n{'=' * WIDTH}\n{title}\n{'=' * WIDTH}\n"


def full_report(measure_s: float = 60.0, seed: int = 0,
                calibration: Optional[ModelCalibration] = None) -> str:
    """Regenerate the complete evaluation as one text report."""
    parts = [
        "Reproduction report — Rincon et al., \"OS-Based Sensor Node "
        "Platform and Energy\nEstimation Model for Health-Care Wireless "
        "Sensor Networks\" (DATE 2008)",
        f"Measurement window: {measure_s:.0f} s per scenario "
        f"(paper: 60 s); seed {seed}.",
    ]

    results = {}
    for table_id in sorted(TABLE_REPRODUCERS):
        reproduce = TABLE_REPRODUCERS[table_id]
        result = reproduce(measure_s=measure_s, seed=seed,
                           calibration=calibration)
        results[table_id] = result
        parts.append(_section(f"{table_id.upper()}"))
        parts.append(result.render())

    parts.append(_section("FIGURE 4"))
    figure = reproduce_figure4(measure_s=measure_s, seed=seed,
                               calibration=calibration)
    parts.append(render_figure4(figure))

    parts.append(_section("VALIDATION SUMMARY"))
    parts.append(validate_all(results).render())

    parts.append(_section("ANALYTIC CROSS-CHECK (Table 1 row 1)"))
    config = BanScenarioConfig(mac="static", app="ecg_streaming",
                               num_nodes=5, cycle_ms=30.0,
                               sampling_hz=205.0, measure_s=measure_s,
                               seed=seed)
    if calibration is not None:
        import dataclasses
        config = dataclasses.replace(config, calibration=calibration)
    prediction = predict(config)
    simulated = results["table1"].rows[0]
    parts.append(
        f"closed form: radio {prediction.radio_mj:.1f} mJ, "
        f"uC {prediction.mcu_mj:.1f} mJ\n"
        f"simulated:   radio {simulated.radio_ours_mj:.1f} mJ, "
        f"uC {simulated.mcu_ours_mj:.1f} mJ")

    parts.append(_section("LOSS TAXONOMY (Table 1 row 1, node1)"))
    node = BanScenario(config).run().node("node1")
    assert node.losses is not None
    for category in RadioEnergyCategory:
        energy = node.losses.energy_j.get(category, 0.0) * 1e3
        parts.append(f"  {category.value:<16} {energy:8.1f} mJ  "
                     f"({100 * node.losses.fraction(category):5.1f}%)")

    return "\n".join(parts)


__all__ = ["full_report"]
