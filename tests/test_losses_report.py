"""Unit tests for the loss taxonomy and the report types/rendering."""

import pytest

from repro.core.losses import (
    LossAccountant,
    RadioEnergyCategory,
    WASTE_CATEGORIES,
)
from repro.core.report import (
    NetworkEnergyResult,
    NodeEnergyResult,
    TrafficCounters,
    render_loss_breakdown,
    render_table,
)


class TestLossAccountant:
    def test_book_and_snapshot(self):
        accountant = LossAccountant()
        accountant.book(RadioEnergyCategory.DATA_TX, 1e-3, frames=2)
        snap = accountant.snapshot()
        assert snap.energy_j[RadioEnergyCategory.DATA_TX] == 1e-3
        assert snap.frames[RadioEnergyCategory.DATA_TX] == 2

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            LossAccountant().book(RadioEnergyCategory.DATA_RX, -1.0)

    def test_finalize_books_idle_residual(self):
        accountant = LossAccountant()
        accountant.book(RadioEnergyCategory.CONTROL_RX, 3e-3)
        accountant.finalize(total_rx_state_j=10e-3)
        snap = accountant.snapshot()
        assert snap.energy_j[RadioEnergyCategory.IDLE_LISTENING] \
            == pytest.approx(7e-3)

    def test_finalize_with_inconsistent_attribution_raises(self):
        accountant = LossAccountant()
        accountant.book(RadioEnergyCategory.DATA_RX, 5e-3)
        with pytest.raises(ValueError):
            accountant.finalize(total_rx_state_j=1e-3)

    def test_finalize_tolerates_float_rounding(self):
        accountant = LossAccountant()
        accountant.book(RadioEnergyCategory.DATA_RX, 1e-3)
        accountant.finalize(total_rx_state_j=1e-3 - 1e-12)
        snap = accountant.snapshot()
        assert snap.energy_j[RadioEnergyCategory.IDLE_LISTENING] >= 0.0

    def test_tx_collision_excluded_from_rx_residual(self):
        accountant = LossAccountant()
        accountant.book_collision_tx(2e-3)
        accountant.book(RadioEnergyCategory.COLLISION, 1e-3)  # RX side
        accountant.finalize(total_rx_state_j=4e-3)
        snap = accountant.snapshot()
        # Idle = 4 - 1 (RX-side collision only).
        assert snap.energy_j[RadioEnergyCategory.IDLE_LISTENING] \
            == pytest.approx(3e-3)
        assert snap.energy_j[RadioEnergyCategory.COLLISION] \
            == pytest.approx(3e-3)


class TestLossBreakdown:
    def make(self):
        accountant = LossAccountant()
        accountant.book(RadioEnergyCategory.DATA_TX, 4e-3)
        accountant.book(RadioEnergyCategory.DATA_RX, 1e-3)
        accountant.book(RadioEnergyCategory.OVERHEARING, 2e-3)
        accountant.book(RadioEnergyCategory.CONTROL_RX, 3e-3)
        return accountant.snapshot()

    def test_total(self):
        assert self.make().total_j == pytest.approx(10e-3)

    def test_useful_vs_waste(self):
        snap = self.make()
        assert snap.useful_j == pytest.approx(5e-3)
        assert snap.waste_j == pytest.approx(5e-3)

    def test_fraction(self):
        snap = self.make()
        assert snap.fraction(RadioEnergyCategory.DATA_TX) \
            == pytest.approx(0.4)

    def test_fraction_empty(self):
        snap = LossAccountant().snapshot()
        assert snap.fraction(RadioEnergyCategory.DATA_TX) == 0.0

    def test_waste_categories_cover_section_4_2(self):
        names = {c.value for c in WASTE_CATEGORIES}
        # The paper's four waste sources plus control TX.
        assert {"collision", "idle_listening", "overhearing",
                "control_rx", "control_tx"} == names


class TestReportTypes:
    def make_node(self, losses=None):
        return NodeEnergyResult(
            node_id="node1", horizon_s=60.0,
            radio_mj=500.0, mcu_mj=160.0, asic_mj=630.0,
            radio_by_state_mj={"rx": 450.0, "tx": 50.0},
            mcu_by_state_mj={"active": 50.0, "sleep": 110.0},
            losses=losses,
            traffic=TrafficCounters(data_tx=2000, control_rx=2000),
        )

    def test_total_excludes_asic(self):
        node = self.make_node()
        assert node.total_mj == pytest.approx(660.0)
        assert node.total_with_asic_mj == pytest.approx(1290.0)

    def test_average_power(self):
        assert self.make_node().average_power_mw == pytest.approx(11.0)

    def test_traffic_totals(self):
        traffic = TrafficCounters(data_tx=5, control_tx=2, data_rx=1,
                                  control_rx=3, overheard=4, corrupted=2)
        assert traffic.total_tx == 7
        assert traffic.total_rx == 10

    def test_network_result_lookup(self):
        node = self.make_node()
        network = NetworkEnergyResult(horizon_s=60.0,
                                      nodes={"node1": node})
        assert network.node("node1") is node
        with pytest.raises(KeyError, match="node1"):
            network.node("ghost")

    def test_network_total(self):
        node = self.make_node()
        network = NetworkEnergyResult(
            horizon_s=60.0, nodes={"node1": node, "node2": node})
        assert network.network_total_mj == pytest.approx(2 * 660.0)

    def test_loss_fraction_without_losses(self):
        assert self.make_node().loss_fraction(
            RadioEnergyCategory.DATA_TX) == 0.0


class TestRenderTable:
    def test_basic_rendering(self):
        text = render_table(["a", "bb"], [(1, 2.5), (30, 4.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5" in text and "30" in text

    def test_float_formatting_one_decimal(self):
        text = render_table(["x"], [(540.6123,)])
        assert "540.6" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_loss_breakdown_rendering(self):
        accountant = LossAccountant()
        accountant.book(RadioEnergyCategory.DATA_TX, 1e-3)
        node = NodeEnergyResult(
            node_id="n", horizon_s=10.0, radio_mj=1.0, mcu_mj=0.5,
            asic_mj=0.0, radio_by_state_mj={}, mcu_by_state_mj={},
            losses=accountant.snapshot())
        text = render_loss_breakdown(node)
        assert "data_tx" in text
        assert "100.0%" in text

    def test_loss_breakdown_without_attribution(self):
        node = NodeEnergyResult(
            node_id="n", horizon_s=10.0, radio_mj=1.0, mcu_mj=0.5,
            asic_mj=0.0, radio_by_state_mj={}, mcu_by_state_mj={})
        assert "no loss attribution" in render_loss_breakdown(node)
