"""Seeded-bug fixture: a reasoned waiver whose rule no longer fires.

The FLT001 waiver below once guarded a float equality that has since
been rewritten as a guarded division; the comment survived the
refactor.  SUP002 must flag it as stale.
"""


def mean_energy_j(total_j: float, count: int) -> float:
    # BUG(SUP002): stale waiver -- nothing float-compares here anymore.
    return total_j / max(count, 1)  # lint: allow(FLT001): zero sentinel
