"""Calibration sensitivity (tornado) analysis.

Four of the model's parameters are fitted rather than measured (the
guard windows, TX event overheads and per-task MCU costs — DESIGN.md
§3).  How much does each one matter?  This module perturbs each
calibration parameter by ±``relative`` and recomputes the node energy
with the closed-form predictor, producing the classic tornado ranking:
parameters whose swing moves the result most deserve the most
measurement care.

Because the predictor is analytic, a full tornado over every parameter
is instantaneous — this is the "what should we calibrate first?"
tool a platform bring-up wants.  ``method="simulate"`` swaps the
predictor for full discrete-event runs (one per perturbation, fanned
out through a :class:`~repro.exec.ScenarioExecutor`), which also
captures effects the closed form ignores (losses, contention).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.calibration import ModelCalibration
from ..exec import ScenarioExecutor
from ..net.scenario import BanScenarioConfig
from .closed_form import predict

#: The perturbable calibration parameters: name -> (getter, setter).
#: Setters return a *new* ModelCalibration (everything is frozen).


def _replace_sync(cal: ModelCalibration, **kw: float) -> ModelCalibration:
    return dataclasses.replace(cal,
                               sync=dataclasses.replace(cal.sync, **kw))


def _replace_timing(cal: ModelCalibration,
                    **kw: float) -> ModelCalibration:
    return dataclasses.replace(
        cal, radio_timing=dataclasses.replace(cal.radio_timing, **kw))


def _replace_costs(cal: ModelCalibration, **kw: float) -> ModelCalibration:
    kw = {key: round(value) for key, value in kw.items()}
    return dataclasses.replace(
        cal, mcu_costs=dataclasses.replace(cal.mcu_costs, **kw))


Scaler = Callable[[ModelCalibration, float], ModelCalibration]

#: name -> function scaling that one parameter by ``factor``.
PARAMETERS: Dict[str, Scaler] = {
    "radio_rx_current": lambda cal, f: dataclasses.replace(
        cal, radio_rx_a=cal.radio_rx_a * f),
    "radio_tx_current": lambda cal, f: dataclasses.replace(
        cal, radio_tx_a=cal.radio_tx_a * f),
    "mcu_active_current": lambda cal, f: dataclasses.replace(
        cal, mcu_active_a=cal.mcu_active_a * f),
    "mcu_sleep_current": lambda cal, f: dataclasses.replace(
        cal, mcu_sleep_a=cal.mcu_sleep_a * f),
    "static_guard_lead": lambda cal, f: _replace_sync(
        cal, static_lead_s=cal.sync.static_lead_s * f),
    "dynamic_guard_base": lambda cal, f: _replace_sync(
        cal, dynamic_base_lead_s=cal.sync.dynamic_base_lead_s * f),
    "tx_settle_time": lambda cal, f: _replace_timing(
        cal, tx_settle_s=cal.radio_timing.tx_settle_s * f),
    "beacon_processing_cost": lambda cal, f: _replace_costs(
        cal, beacon_processing=cal.mcu_costs.beacon_processing * f),
    "packet_preparation_cost": lambda cal, f: _replace_costs(
        cal, packet_preparation=cal.mcu_costs.packet_preparation * f),
    "sample_acquisition_cost": lambda cal, f: _replace_costs(
        cal, sample_acquisition=cal.mcu_costs.sample_acquisition * f),
    "rpeak_algorithm_cost": lambda cal, f: _replace_costs(
        cal, rpeak_algorithm=cal.mcu_costs.rpeak_algorithm * f),
}


@dataclass(frozen=True)
class SensitivityEntry:
    """One tornado bar: the output swing from one parameter's ±range."""

    parameter: str
    nominal_mj: float
    low_mj: float
    high_mj: float

    @property
    def swing_mj(self) -> float:
        """|high - low| — the bar length."""
        return abs(self.high_mj - self.low_mj)

    @property
    def swing_fraction(self) -> float:
        """Swing relative to the nominal output."""
        if self.nominal_mj <= 0:
            return 0.0
        return self.swing_mj / self.nominal_mj


def _extract(quantity: str) -> Callable[[object], float]:
    """Value extractor for a prediction or a reported node result.

    Both :class:`~repro.analysis.closed_form` predictions and
    :class:`~repro.core.report.NodeEnergyResult` expose
    ``radio_mj``/``mcu_mj``/``total_mj``, so one extractor serves both
    tornado methods.
    """
    if quantity not in ("total", "radio", "mcu"):
        raise ValueError(
            f"quantity must be total/radio/mcu, got {quantity!r}")
    attribute = f"{quantity}_mj"
    return lambda value: float(getattr(value, attribute))


def tornado(config: BanScenarioConfig, relative: float = 0.10,
            parameters: Sequence[str] = tuple(PARAMETERS),
            quantity: str = "total",
            method: str = "analytic",
            executor: Optional[ScenarioExecutor] = None
            ) -> List[SensitivityEntry]:
    """Sensitivity of the node energy to each calibration parameter.

    Args:
        config: the scenario whose energy is analysed.
        relative: the ± perturbation (0.10 = ±10%).
        parameters: which parameters to perturb (default: all).
        quantity: ``"total"`` (radio+MCU), ``"radio"`` or ``"mcu"``.
        method: ``"analytic"`` (closed-form, instantaneous) or
            ``"simulate"`` (full discrete-event run per perturbation —
            2·|parameters|+1 scenarios, batched through ``executor``).
        executor: parallel/cached execution for ``method="simulate"``.

    Returns entries sorted by decreasing swing.
    """
    if not 0.0 < relative < 1.0:
        raise ValueError(f"relative perturbation out of (0,1): {relative}")
    if method not in ("analytic", "simulate"):
        raise ValueError(
            f"method must be analytic/simulate, got {method!r}")
    extract = _extract(quantity)

    scalers: List[Scaler] = []
    for name in parameters:
        try:
            scalers.append(PARAMETERS[name])
        except KeyError:
            raise KeyError(f"unknown parameter {name!r}; "
                           f"known: {sorted(PARAMETERS)}") from None

    # One config per evaluated point: nominal, then (low, high) pairs.
    calibrations = [config.calibration]
    for scale in scalers:
        calibrations.append(scale(config.calibration, 1.0 - relative))
        calibrations.append(scale(config.calibration, 1.0 + relative))
    configs = [dataclasses.replace(config, calibration=cal)
               for cal in calibrations]

    if method == "analytic":
        values = [extract(predict(point)) for point in configs]
    else:
        from .experiments import REPORTED_NODE, _resolve
        results = _resolve(executor).run_configs(configs)
        values = [extract(result.node(REPORTED_NODE))
                  for result in results]

    nominal = values[0]
    entries: List[SensitivityEntry] = []
    for index, name in enumerate(parameters):
        entries.append(SensitivityEntry(
            parameter=name, nominal_mj=nominal,
            low_mj=values[1 + 2 * index],
            high_mj=values[2 + 2 * index]))
    entries.sort(key=lambda e: e.swing_mj, reverse=True)
    return entries


def render_tornado(entries: Sequence[SensitivityEntry],
                   width: int = 40) -> str:
    """ASCII tornado chart."""
    if not entries:
        return "(no parameters)"
    scale = max(e.swing_mj for e in entries) or 1.0
    lines = [f"Tornado: output nominal {entries[0].nominal_mj:.1f} mJ"]
    for entry in entries:
        bar = "#" * max(1, round(width * entry.swing_mj / scale))
        lines.append(
            f"  {entry.parameter:<26} {bar:<{width}} "
            f"{entry.swing_mj:7.2f} mJ ({100 * entry.swing_fraction:.1f}%)")
    return "\n".join(lines)


__all__ = ["PARAMETERS", "SensitivityEntry", "tornado", "render_tornado"]
