"""Baseline estimators at increasing modelling fidelity.

The paper's Section 2/4 argument is that simple energy models miss the
platform effects that dominate real consumption: radio turn-on
overheads, synchronisation guard windows, OS overhead, control traffic.
This module makes that argument quantitative by implementing the naive
estimators a designer might use *instead* of the simulator, as a
fidelity ladder:

``L0_AIRTIME``
    Energy = airtime x current, nothing else: the radio only ever pays
    for bits on the air, the MCU only for "algorithm instructions" at
    the datasheet's energy/instruction.  This is the back-of-envelope
    duty-cycle estimate.
``L1_TX_OVERHEAD``
    Adds the ShockBurst event overhead (PLL settle + shutdown tail) —
    what a careful datasheet reading gives.
``L2_GUARD_WINDOWS``
    Adds the beacon-listen guard windows and the OS/task overheads —
    i.e. the full platform model; this level coincides with
    :mod:`repro.analysis.closed_form` and with the simulator in the
    nominal case.

``benchmarks/bench_baseline_fidelity.py`` evaluates each level against
the paper's hardware columns: L0 underestimates the radio by ~10-20x,
L1 barely helps, and only L2 lands within the paper's error band —
the guard window *is* the energy story.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analysis.closed_form import predict as full_predict
from ..apps.rpeak import BEAT_PAYLOAD_BYTES
from ..mac.messages import beacon_payload_bytes
from ..net.scenario import BanScenarioConfig

#: Datasheet energy per instruction the paper quotes for the MSP430 [J].
ENERGY_PER_INSTRUCTION_J = 0.6e-9


class Fidelity(enum.Enum):
    """How much of the platform the estimator models."""

    L0_AIRTIME = "airtime_only"
    L1_TX_OVERHEAD = "tx_overhead"
    L2_GUARD_WINDOWS = "guard_windows"


@dataclass(frozen=True)
class BaselineEstimate:
    """A baseline's prediction for one node over the window."""

    fidelity: Fidelity
    radio_mj: float
    mcu_mj: float

    @property
    def total_mj(self) -> float:
        """Radio + MCU."""
        return self.radio_mj + self.mcu_mj


def _traffic(config: BanScenarioConfig):
    """(cycles, tx/cycle, data payload bytes, instr-like cycles) for the
    configured workload."""
    cal = config.calibration
    cycle_s = config.cycle_ticks / 1e9
    cycles = config.measure_s / cycle_s
    sampling_hz = config.derived_sampling_hz()
    samples = 2.0 * sampling_hz * config.measure_s
    if config.app == "ecg_streaming":
        tx_per_cycle = 1.0
        payload = config.payload_bytes
        algo_cycles = samples * cal.mcu_costs.sample_acquisition
    else:
        reports_per_s = 2.0 * config.heart_rate_bpm / 60.0
        tx_per_cycle = min(1.0, reports_per_s * cycle_s)
        payload = BEAT_PAYLOAD_BYTES
        algo_cycles = samples * (cal.mcu_costs.sample_acquisition
                                 + cal.mcu_costs.rpeak_algorithm)
    return cycles, tx_per_cycle, payload, algo_cycles


def estimate(config: BanScenarioConfig,
             fidelity: Fidelity) -> BaselineEstimate:
    """Estimate one node's energy at the given modelling fidelity."""
    if fidelity is Fidelity.L2_GUARD_WINDOWS:
        full = full_predict(config)
        return BaselineEstimate(fidelity=fidelity,
                                radio_mj=full.radio_mj,
                                mcu_mj=full.mcu_mj)

    cal = config.calibration
    timing = cal.radio_timing
    cycles, tx_per_cycle, payload, algo_cycles = _traffic(config)

    rx_w = cal.radio_rx_a * cal.supply_v
    tx_w = cal.radio_tx_a * cal.supply_v

    if config.mac == "static":
        slots = config.effective_num_slots
    else:
        slots = config.num_nodes
    beacon_air = timing.airtime_s(beacon_payload_bytes(slots))
    data_air = timing.airtime_s(payload)

    if fidelity is Fidelity.L0_AIRTIME:
        tx_time = data_air
    else:  # L1: the ShockBurst event overheads from the datasheet
        tx_time = timing.tx_event_s(payload)

    radio_j = cycles * (beacon_air * rx_w
                        + tx_per_cycle * tx_time * tx_w)

    # Naive MCU model: the algorithm's instructions at the datasheet
    # figure, on top of the sleep floor — no OS, no drivers, no wakeups.
    sleep_w = cal.mcu_sleep_a * cal.supply_v
    mcu_j = sleep_w * config.measure_s \
        + algo_cycles * ENERGY_PER_INSTRUCTION_J

    return BaselineEstimate(fidelity=fidelity,
                            radio_mj=radio_j * 1e3,
                            mcu_mj=mcu_j * 1e3)


def fidelity_ladder(config: BanScenarioConfig):
    """All three estimates, L0 -> L2."""
    return [estimate(config, level) for level in Fidelity]


__all__ = ["ENERGY_PER_INSTRUCTION_J", "Fidelity", "BaselineEstimate",
           "estimate", "fidelity_ladder"]
