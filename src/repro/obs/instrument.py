"""Pull-based instrumentation: read model state into a registry.

The simulation models already maintain every number the MAC surveys
evaluate protocols on — collision counts, overhearing, control
overhead, per-state residencies — they just never surfaced them.  The
collectors here *pull* those numbers into a
:class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`collect_scenario_metrics` walks a built scenario (nodes, base
  station, MACs, radios, MCUs) calling each model's
  ``observe_metrics`` hook;
* :func:`collect_simulator_metrics` reads the kernel's dispatch/queue
  figures;
* :func:`collect_cache_metrics` folds a result cache's hit/miss/
  uncacheable stats in;
* :func:`attach_periodic_snapshots` arms a self-rescheduling sim event
  that appends per-node energy and kernel queue-depth *trajectories*
  to registry series, so long runs show how figures evolve rather
  than only their endpoints.

Pulling instead of pushing is what keeps the disabled path free: a run
without a registry executes byte-identical code, and even *with* one
the collectors only read — event order, RNG streams and energies are
untouched (periodic snapshots add kernel events of their own, but
their callbacks mutate nothing, so every energy figure is unchanged).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.events import EventEntry, cancel_event
from ..sim.simtime import seconds, to_seconds

if TYPE_CHECKING:
    from ..exec.cache import ResultCache
    from ..net.scenario import BanScenario
    from ..sim.kernel import Simulator
from .metrics import GLOBAL, MetricsRegistry


def collect_simulator_metrics(sim: "Simulator",
                              registry: MetricsRegistry) -> None:
    """Record the kernel's dispatch and queue figures.

    ``events_dispatched`` is a counter (additive across merged worker
    registries); the queue depth is a point-in-time gauge.
    """
    registry.counter("kernel", GLOBAL,
                     "events_dispatched").inc(sim.events_dispatched)
    registry.gauge("kernel", GLOBAL, "pending_events").set(
        sim.pending_events())
    registry.gauge("kernel", GLOBAL, "sim_time_s").set(
        to_seconds(sim.now))


def collect_scenario_metrics(scenario: "BanScenario",
                             registry: MetricsRegistry) -> None:
    """Walk a built BAN scenario and pull every model's metrics.

    Works for :class:`~repro.net.scenario.BanScenario` (and any object
    exposing ``nodes`` / ``base_station``): per node, the radio's
    traffic counters and residencies, the MCU's residencies and cycle
    counts, and the MAC's protocol counters; plus the base-station
    side of each.
    """
    for node in scenario.nodes:
        node.radio.observe_metrics(registry, node.node_id)
        node.mcu.observe_metrics(registry, node.node_id)
        if node.mac is not None and hasattr(node.mac, "observe_metrics"):
            node.mac.observe_metrics(registry, node.node_id)
    base = scenario.base_station
    base.radio.observe_metrics(registry, base.address)
    base.mcu.observe_metrics(registry, base.address)
    if base.mac is not None and hasattr(base.mac, "observe_metrics"):
        base.mac.observe_metrics(registry, base.address)
    injector = getattr(scenario, "fault_injector", None)
    if injector is not None:
        injector.observe_metrics(registry)


def collect_cache_metrics(cache: "ResultCache",
                          registry: MetricsRegistry) -> None:
    """Record a :class:`~repro.exec.cache.ResultCache`'s counters."""
    stats = cache.stats
    registry.counter("cache", GLOBAL, "hits").inc(stats.hits)
    registry.counter("cache", GLOBAL, "misses").inc(stats.misses)
    registry.counter("cache", GLOBAL,
                     "uncacheable").inc(stats.uncacheable)


class PeriodicSnapshotter:
    """Self-rescheduling sim event appending trajectory samples.

    Each fire records, into registry series keyed by node:

    * per-node radio / MCU energy so far (mJ), and
    * the kernel's live queue depth and cumulative dispatch count.

    The callbacks only *read* model state, so arming a snapshotter
    changes no energy figure (it does add its own kernel events, so
    ``events_dispatched`` grows by the number of fires).
    """

    def __init__(self, sim: "Simulator",
                 scenario: Optional["BanScenario"],
                 registry: MetricsRegistry,
                 period_s: float,
                 series_capacity: Optional[int] = None) -> None:
        if period_s <= 0:
            raise ValueError(f"period must be positive: {period_s}")
        self.sim = sim
        self.scenario = scenario
        self.registry = registry
        self.period_ticks = max(1, seconds(period_s))
        self.series_capacity = series_capacity
        self.samples = 0
        self._armed = False
        self._event: Optional[EventEntry] = None

    def start(self) -> None:
        """Arm the first fire one period from now."""
        if self._armed:
            raise RuntimeError("snapshotter already started")
        self._armed = True
        self._event = self.sim.after(self.period_ticks, self._fire,
                                     label="obs.snapshot")

    def stop(self) -> None:
        """Disarm: cancel the pending fire and stop re-scheduling."""
        if not self._armed:
            return
        self._armed = False
        if self._event is not None:
            cancel_event(self._event)
            self._event = None

    def _fire(self) -> None:
        if not self._armed:
            return  # disarmed while this fire was already in flight
        now_s = to_seconds(self.sim.now)
        registry = self.registry
        cap = self.series_capacity
        registry.series("kernel", GLOBAL, "queue_depth", cap).append(
            now_s, self.sim.pending_events())
        registry.series("kernel", GLOBAL, "events_dispatched",
                        cap).append(now_s, self.sim.events_dispatched)
        if self.scenario is not None:
            for node in self.scenario.nodes:
                registry.series("radio", node.node_id, "energy_mj",
                                cap).append(now_s,
                                            node.radio.energy_mj())
                registry.series("mcu", node.node_id, "energy_mj",
                                cap).append(now_s, node.mcu.energy_mj())
        self.samples += 1
        self._event = self.sim.after(self.period_ticks, self._fire,
                                     label="obs.snapshot")


def attach_periodic_snapshots(sim: "Simulator",
                              registry: MetricsRegistry,
                              scenario: Optional["BanScenario"] = None,
                              period_s: float = 5.0,
                              series_capacity: Optional[int] = None
                              ) -> PeriodicSnapshotter:
    """Arm a :class:`PeriodicSnapshotter` on ``sim`` and return it."""
    snapshotter = PeriodicSnapshotter(sim, scenario, registry, period_s,
                                      series_capacity)
    snapshotter.start()
    return snapshotter


__all__ = ["collect_simulator_metrics", "collect_scenario_metrics",
           "collect_cache_metrics", "PeriodicSnapshotter",
           "attach_periodic_snapshots"]
