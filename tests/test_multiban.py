"""Tests for multi-BAN coexistence on one channel."""

import pytest

from repro.net.multi import MultiBanScenario
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.phy.topology import ExplicitLinks


def config(cycle_ms=30.0, sampling_hz=205.0, measure_s=3.0, **kw):
    return BanScenarioConfig(mac="static", app="ecg_streaming",
                             num_nodes=2, cycle_ms=cycle_ms,
                             sampling_hz=sampling_hz,
                             measure_s=measure_s, **kw)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiBanScenario([])

    def test_mismatched_horizons_rejected(self):
        with pytest.raises(ValueError, match="measure_s"):
            MultiBanScenario([config(measure_s=3.0),
                              config(measure_s=5.0)])

    def test_prefixed_addresses(self):
        multi = MultiBanScenario([config(), config()])
        ids = [node.node_id for ban in multi.bans for node in ban.nodes]
        assert ids == ["ban1.node1", "ban1.node2",
                       "ban2.node1", "ban2.node2"]
        assert multi.bans[0].base_station.address == "ban1.base_station"

    def test_shared_sim_and_channel(self):
        multi = MultiBanScenario([config(), config()])
        assert multi.bans[0].sim is multi.bans[1].sim
        assert multi.bans[0].channel is multi.bans[1].channel

    def test_scenario_sim_channel_pairing_enforced(self):
        from repro.sim.kernel import Simulator
        with pytest.raises(ValueError):
            BanScenario(config(), sim=Simulator())


class TestCoexistence:
    def test_both_bans_deliver_data(self):
        multi = MultiBanScenario([config(), config(cycle_ms=40.0,
                                                   sampling_hz=150.0)])
        results = multi.run()
        for ban_name, result in results.items():
            total_tx = sum(n.traffic.data_tx
                           for n in result.nodes.values())
            assert total_tx > 0, ban_name

    def test_nodes_never_sync_to_foreign_beacon(self):
        multi = MultiBanScenario([config(), config(cycle_ms=40.0,
                                                   sampling_hz=150.0)],
                                 stagger_ms=7.8)
        multi.run()
        for index, ban in enumerate(multi.bans):
            expected_cycle = (30.0, 40.0)[index]
            for node in ban.nodes:
                assert node.mac.cycle_ticks == pytest.approx(
                    expected_cycle * 1e6)

    def test_interference_produces_collisions(self):
        # Stagger chosen so ban2's first data slot (13.33 ms into its
        # 40 ms cycle) lands on ban1's 20 ms slot: 6.6 + 13.33 ~ 20.
        multi = MultiBanScenario([config(measure_s=5.0),
                                  config(cycle_ms=40.0,
                                         sampling_hz=150.0,
                                         measure_s=5.0)],
                                 stagger_ms=6.6)
        multi.run()
        assert multi.collisions_detected > 0

    def test_aligned_grids_coexist_cleanly(self):
        """With a stagger that interleaves the schedules cleanly, two
        same-cycle BANs share the channel with zero collisions."""
        multi = MultiBanScenario([config(), config()], stagger_ms=7.0)
        results = multi.run()
        assert multi.collisions_detected == 0
        for result in results.values():
            for node in result.nodes.values():
                assert node.traffic.corrupted == 0

    def test_separated_bans_do_not_interact(self):
        """Out of radio range, the two BANs are invisible to each other."""
        links = set()
        for ban in ("ban1", "ban2"):
            members = [f"{ban}.base_station", f"{ban}.node1",
                       f"{ban}.node2"]
            for a in members:
                for b in members:
                    if a != b:
                        links.add((a, b))
        multi = MultiBanScenario([config(), config()], stagger_ms=7.8,
                                 topology=ExplicitLinks(links))
        results = multi.run()
        assert multi.collisions_detected == 0
        for result in results.values():
            for node in result.nodes.values():
                assert node.traffic.overheard == 0

    def test_isolated_energy_matches_single_ban(self):
        """A BAN out of range of its neighbour measures like a lone BAN."""
        links = set()
        for ban in ("ban1", "ban2"):
            members = [f"{ban}.base_station", f"{ban}.node1",
                       f"{ban}.node2"]
            for a in members:
                for b in members:
                    if a != b:
                        links.add((a, b))
        multi = MultiBanScenario([config(), config()],
                                 topology=ExplicitLinks(links))
        results = multi.run()
        single = BanScenario(config()).run()
        lone = single.node("node1")
        shared = results["ban1"].node("ban1.node1")
        assert shared.radio_mj == pytest.approx(lone.radio_mj, rel=0.01)

    def test_summary_renders(self):
        multi = MultiBanScenario([config(), config()])
        results = multi.run()
        text = multi.interference_summary(results)
        assert "ban1" in text and "ban2" in text
        assert "collision" in text

    def test_rf_channel_separation_restores_isolation(self):
        """The adversarial stagger that collides co-channel BANs is
        harmless once the networks tune to different RF channels."""
        shared = MultiBanScenario(
            [config(measure_s=5.0),
             config(cycle_ms=40.0, sampling_hz=150.0, measure_s=5.0)],
            stagger_ms=6.6)
        shared.run()
        assert shared.collisions_detected > 0

        separated = MultiBanScenario(
            [config(measure_s=5.0),
             config(cycle_ms=40.0, sampling_hz=150.0, measure_s=5.0)],
            stagger_ms=6.6, rf_channels=(0, 40))
        results = separated.run()
        assert separated.collisions_detected == 0
        for result in results.values():
            for node in result.nodes.values():
                assert node.traffic.overheard == 0
                assert node.traffic.corrupted == 0

    def test_rf_channel_count_validation(self):
        with pytest.raises(ValueError, match="rf_channels"):
            MultiBanScenario([config(), config()], rf_channels=(0,))
