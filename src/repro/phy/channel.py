"""The shared radio medium.

The paper's key correction to stock TOSSIM (Section 4.2) is collision
realism: TOSSIM merges simultaneous transmissions with a logical OR and
assumes every packet arrives, so collisions are invisible.  Here a frame
reaches a receiver **corrupted** when

* its airtime overlaps another frame's airtime at that receiver, or
* the per-link loss model says the frame took bit errors.

The corruption is then *detectable* because the nRF2401 model implements
the hardware CRC — exactly the paper's mechanism.

Mechanics: a transmitting radio calls :meth:`Channel.begin_transmission`
when its frame's first bit hits the air and :meth:`Channel.end_transmission`
when the last bit leaves.  The channel synchronously notifies every
in-range radio at both instants; receivers decide capture (they must have
been in RX for the whole airtime) and book energy.  Propagation delay is
negligible at BAN scale (< 10 ns over 3 m) and is modelled as zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from .lossmodels import LossModel, PerfectChannel
from .topology import FullConnectivity, Topology
from ..hw.frames import Frame

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.radio import Nrf2401, TxOutcome
    from ..obs.spans import SpanTracer


@dataclass(slots=True)
class Transmission:
    """One frame in flight.

    ``corrupted_at`` collects receiver addresses where the frame will
    fail the CRC (collision overlap or loss-model draw); ``delivered_to``
    collects receivers whose radio accepted and delivered it.
    ``receivers`` is the in-range receiver set computed when the first
    bit hit the air; the end-of-air notification reuses it, so both
    edges of one frame see the same audience.
    """

    frame: Frame
    sender: "Nrf2401"
    start_time: int
    airtime: int
    corrupted_at: Set[str] = field(default_factory=set)
    delivered_to: List[str] = field(default_factory=list)
    receivers: List["Nrf2401"] = field(default_factory=list)

    @property
    def end_time(self) -> int:
        """Instant the last bit leaves the air."""
        return self.start_time + self.airtime


class Channel:
    """Zero-delay broadcast medium with per-receiver collision detection.

    Args:
        sim: simulation kernel (clock + RNG for the loss model).
        topology: reachability model; defaults to full connectivity.
        loss_model: per-link corruption model; defaults to perfect.
    """

    def __init__(self, sim: Simulator,
                 topology: Optional[Topology] = None,
                 loss_model: Optional[LossModel] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        self._sim = sim
        self.topology = topology if topology is not None \
            else FullConnectivity()
        self.loss_model = loss_model if loss_model is not None \
            else PerfectChannel()
        self._trace = trace
        self._radios: Dict[str, "Nrf2401"] = {}
        # Per-receiver sets of in-flight transmissions, for overlap checks.
        self._inflight_at: Dict[str, Set[int]] = {}
        self._live: Dict[int, Transmission] = {}
        self._collisions_detected = 0
        self._frames_sent = 0
        #: Optional causal-span tracer (:mod:`repro.obs.spans`).
        self.spans: Optional["SpanTracer"] = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, radio: "Nrf2401") -> None:
        """Register a radio on the medium.  Addresses must be unique."""
        if radio.address in self._radios:
            raise ValueError(
                f"duplicate radio address {radio.address!r} on channel")
        self._radios[radio.address] = radio
        self._inflight_at[radio.address] = set()

    @property
    def radios(self) -> Dict[str, "Nrf2401"]:
        """Attached radios by address (read-only view by convention)."""
        return self._radios

    def is_busy_at(self, address: str) -> bool:
        """Carrier sense: is any transmission in flight at ``address``?

        True while at least one frame whose receiver set includes the
        radio at ``address`` (in range, same RF channel, not its own
        transmission) is on the air.  This is the PHY query a CCA
        window samples; it reads the same per-receiver in-flight sets
        the collision detector maintains, so "busy" and "would collide"
        agree by construction.
        """
        return bool(self._inflight_at[address])

    @property
    def collisions_detected(self) -> int:
        """Number of (transmission, receiver) overlap corruptions so far."""
        return self._collisions_detected

    @property
    def frames_sent(self) -> int:
        """Total transmissions that have hit the air."""
        return self._frames_sent

    def _receivers_of(self, sender: "Nrf2401") -> List["Nrf2401"]:
        sender_address = sender.address
        sender_rf = sender.rf_channel
        in_range = self.topology.in_range
        return [radio for address, radio in self._radios.items()
                if address != sender_address
                and radio.rf_channel == sender_rf
                and in_range(sender_address, address)]

    # ------------------------------------------------------------------
    # Transmission lifecycle (called by the transmitting radio)
    # ------------------------------------------------------------------
    def begin_transmission(self, sender: "Nrf2401", frame: Frame,
                           airtime: int) -> Transmission:
        """First bit on air: create the transmission and notify receivers.

        Overlap detection happens here: for every in-range receiver that
        already has frames in flight, *all* overlapping frames (old and
        new) are marked corrupted at that receiver.
        """
        now = self._sim.now
        receivers = self._receivers_of(sender)
        transmission = Transmission(frame=frame, sender=sender,
                                    start_time=now,
                                    airtime=airtime,
                                    receivers=receivers)
        frame_id = frame.frame_id
        live = self._live
        live[frame_id] = transmission
        self._frames_sent += 1
        if self._trace is not None:
            self._trace.record(now, "channel", "air_start",
                               frame.describe())
        if self.spans is not None:
            self.spans.air_begin(frame, now)
        loss_model = self.loss_model
        # A model that never overrides is_corrupted (the lossless base
        # behaviour) needs no per-receiver draw at all.
        lossy = type(loss_model).is_corrupted \
            is not LossModel.is_corrupted
        inflight_at = self._inflight_at
        corrupted_at = transmission.corrupted_at
        src = sender.address
        rng = self._sim.rng
        for receiver in receivers:
            address = receiver.address
            inflight = inflight_at[address]
            if inflight:
                # Collision at this receiver: corrupt everyone involved.
                for other_id in inflight:
                    other = live[other_id]
                    if address not in other.corrupted_at:
                        other.corrupted_at.add(address)
                        self._collisions_detected += 1
                corrupted_at.add(address)
                self._collisions_detected += 1
            if lossy and loss_model.is_corrupted(
                    rng, src, address, frame_id):
                corrupted_at.add(address)
            inflight.add(frame_id)
            receiver.frame_arrival_start(transmission)
        return transmission

    def end_transmission(self, transmission: Transmission) -> "TxOutcome":
        """Last bit off air: notify receivers and summarise the outcome."""
        from ..hw.radio import TxOutcome
        frame = transmission.frame
        frame_id = frame.frame_id
        self._live.pop(frame_id, None)
        if self._trace is not None:
            self._trace.record(self._sim.now, "channel", "air_end",
                               frame.describe())
        if self.spans is not None:
            self.spans.air_end(frame, self._sim.now)
        inflight_at = self._inflight_at
        corrupted_at = transmission.corrupted_at
        for receiver in transmission.receivers:
            address = receiver.address
            inflight_at[address].discard(frame_id)
            receiver.frame_arrival_end(transmission,
                                       address in corrupted_at)
        return TxOutcome(frame=frame,
                         corrupted_at=sorted(corrupted_at),
                         delivered_to=list(transmission.delivered_to))


__all__ = ["Channel", "Transmission"]
