"""Unit tests for the MSP430 power model."""

import pytest

from repro.hw.mcu import ACTIVE, SLEEP, Msp430
from repro.sim.simtime import microseconds, seconds


def make_mcu(sim, cal):
    return Msp430(sim, cal, name="t.mcu")


class TestStates:
    def test_starts_asleep(self, sim, cal):
        assert make_mcu(sim, cal).is_sleeping

    def test_wake_returns_6us_latency(self, sim, cal):
        mcu = make_mcu(sim, cal)
        assert mcu.wake() == microseconds(6)
        assert not mcu.is_sleeping

    def test_wake_when_active_is_free(self, sim, cal):
        mcu = make_mcu(sim, cal)
        mcu.wake()
        assert mcu.wake() == 0

    def test_sleep_transitions(self, sim, cal):
        mcu = make_mcu(sim, cal)
        mcu.wake()
        mcu.sleep()
        assert mcu.is_sleeping

    def test_sleep_idempotent(self, sim, cal):
        mcu = make_mcu(sim, cal)
        mcu.sleep()
        assert mcu.is_sleeping

    def test_begin_task_while_sleeping_raises(self, sim, cal):
        with pytest.raises(RuntimeError):
            make_mcu(sim, cal).begin_task("oops")

    def test_wakeups_counted(self, sim, cal):
        mcu = make_mcu(sim, cal)
        mcu.wake()
        mcu.sleep()
        mcu.wake()
        assert mcu.wakeups == 2


class TestCycleConversion:
    def test_8mhz_cycle_is_125ns(self, sim, cal):
        assert make_mcu(sim, cal).cycles_to_ticks(1) == 125

    def test_beacon_processing_duration(self, sim, cal):
        mcu = make_mcu(sim, cal)
        ticks = mcu.cycles_to_ticks(cal.mcu_costs.beacon_processing)
        assert ticks == pytest.approx(seconds(2.24e-3), abs=125)

    def test_negative_cycles_rejected(self, sim, cal):
        with pytest.raises(ValueError):
            make_mcu(sim, cal).cycles_to_ticks(-1)

    def test_account_cycles(self, sim, cal):
        mcu = make_mcu(sim, cal)
        mcu.account_cycles(100)
        mcu.account_cycles(50)
        assert mcu.cycles_executed == 150


class TestEnergy:
    def test_sleep_only_energy(self, sim, cal):
        mcu = make_mcu(sim, cal)
        sim.run_until(seconds(60.0))
        # 0.66 mA * 2.8 V * 60 s = 110.88 mJ: the floor of every paper
        # MCU column.
        assert mcu.energy_mj() == pytest.approx(110.88)

    def test_active_only_energy(self, sim, cal):
        mcu = make_mcu(sim, cal)
        mcu.wake()
        sim.run_until(seconds(60.0))
        assert mcu.energy_mj() == pytest.approx(2.0e-3 * 2.8 * 60 * 1e3,
                                                rel=1e-6)

    def test_mixed_energy(self, sim, cal):
        mcu = make_mcu(sim, cal)
        sim.at(seconds(10.0), mcu.wake)
        sim.at(seconds(20.0), mcu.sleep)
        sim.run_until(seconds(30.0))
        expected = (0.66e-3 * 20 + 2.0e-3 * 10) * 2.8 * 1e3
        assert mcu.energy_mj() == pytest.approx(expected)

    def test_active_seconds(self, sim, cal):
        mcu = make_mcu(sim, cal)
        sim.at(seconds(1.0), mcu.wake)
        sim.at(seconds(3.5), mcu.sleep)
        sim.run_until(seconds(5.0))
        assert mcu.active_seconds() == pytest.approx(2.5)

    def test_reset_measurement(self, sim, cal):
        mcu = make_mcu(sim, cal)
        mcu.wake()
        mcu.account_cycles(1000)
        sim.run_until(seconds(2.0))
        mcu.reset_measurement()
        assert mcu.cycles_executed == 0
        assert mcu.energy_mj() == 0.0
        sim.run_until(seconds(3.0))
        # Still active after reset: 1 s of active current.
        assert mcu.energy_mj() == pytest.approx(2.0e-3 * 2.8 * 1e3)

    def test_ledger_states_named(self, sim, cal):
        mcu = make_mcu(sim, cal)
        assert ACTIVE in mcu.ledger.table
        assert SLEEP in mcu.ledger.table
