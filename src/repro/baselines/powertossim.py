"""PowerTOSSIM-style basic-block CPU estimation.

PowerTOSSIM (the paper's Section 2 comparator) estimates CPU energy by
"counting the execution of basic blocks and mapping them to clock
cycles of the microcontroller"; the paper criticises that "it needs an
accurate mapping from the basic blocks to binaries".  This module
reproduces the technique so the criticism can be demonstrated
quantitatively:

* :class:`BasicBlock` / :class:`BlockProgram` — a program as a set of
  counted basic blocks (the instrumentation PowerTOSSIM inserts);
* :class:`CycleMapping` — the per-block block->cycles table obtained
  from the compiled binary; :meth:`CycleMapping.perturbed` models an
  *inaccurate* mapping (wrong compiler flags, library code the mapper
  missed) by scaling every entry deterministically;
* :func:`estimate_mcu_energy` — the PowerTOSSIM formula: sleep floor
  plus counted active cycles at the active current.

The block programs for the two case-study applications are built from
our calibrated task costs, so with a *perfect* mapping the technique
agrees with the paper's model by construction — the experiment
(``tests/test_powertossim.py`` and ablation A7) is how fast accuracy
degrades as the mapping drifts, and that block counting alone says
nothing about the radio (the dominant consumer).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..core.calibration import ModelCalibration
from ..net.scenario import BanScenarioConfig


@dataclass(frozen=True)
class BasicBlock:
    """One instrumented basic block.

    Attributes:
        name: symbol-like identifier (``"adc_read.loop"``).
        cycles: true cost of one execution, in MCU clock cycles.
    """

    name: str
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(
                f"block {self.name!r}: cycles must be >= 0")


class BlockProgram:
    """A program as basic blocks plus per-window execution counts."""

    def __init__(self, blocks: Iterable[BasicBlock]) -> None:
        self._blocks: Dict[str, BasicBlock] = {}
        for block in blocks:
            if block.name in self._blocks:
                raise ValueError(f"duplicate block {block.name!r}")
            self._blocks[block.name] = block
        self._counts: Dict[str, float] = {name: 0.0
                                          for name in self._blocks}

    @property
    def blocks(self) -> Tuple[BasicBlock, ...]:
        """The program's blocks."""
        return tuple(self._blocks.values())

    def count(self, name: str, executions: float) -> None:
        """Record ``executions`` runs of block ``name`` (the counter the
        instrumentation bumps)."""
        if name not in self._blocks:
            raise KeyError(f"unknown block {name!r}; "
                           f"known: {sorted(self._blocks)}")
        if executions < 0:
            raise ValueError(f"negative executions: {executions}")
        self._counts[name] += executions

    def counts(self) -> Dict[str, float]:
        """Copy of the execution counters."""
        return dict(self._counts)

    def true_mapping(self) -> "CycleMapping":
        """The exact block->cycles table (a perfect binary mapping)."""
        return CycleMapping({block.name: float(block.cycles)
                             for block in self.blocks})


@dataclass(frozen=True)
class CycleMapping:
    """The block -> cycles table recovered from the binary."""

    cycles_per_block: Dict[str, float]

    def perturbed(self, relative_error: float,
                  seed: int = 0) -> "CycleMapping":
        """A deterministically inaccurate mapping.

        Every entry is scaled by a factor drawn uniformly from
        ``[1 - relative_error, 1 + relative_error]`` (hash-derived, so
        reproducible per (seed, block)).
        """
        if not 0.0 <= relative_error < 1.0:
            raise ValueError(
                f"relative_error out of [0,1): {relative_error}")
        scaled = {}
        for name, cycles in self.cycles_per_block.items():
            digest = hashlib.blake2b(
                struct.pack("<q", seed) + name.encode(),
                digest_size=8).digest()
            unit = int.from_bytes(digest, "little") / float(1 << 64)
            factor = 1.0 + relative_error * (2.0 * unit - 1.0)
            scaled[name] = cycles * factor
        return CycleMapping(scaled)

    def cycles_for(self, counts: Dict[str, float]) -> float:
        """Total cycles implied by the execution counters."""
        total = 0.0
        for name, executions in counts.items():
            try:
                total += executions * self.cycles_per_block[name]
            except KeyError:
                raise KeyError(
                    f"mapping has no entry for block {name!r}") from None
        return total


# ---------------------------------------------------------------------------
# Case-study programs
# ---------------------------------------------------------------------------

def build_program(config: BanScenarioConfig) -> BlockProgram:
    """The case-study application as counted basic blocks.

    Blocks mirror the calibrated TinyOS activities; the counts for a
    ``measure_s`` window follow the workload arithmetic (one beacon per
    cycle, one packet per cycle for streaming, per-sample processing).
    """
    costs: ModelCalibration = config.calibration
    mcu = costs.mcu_costs
    blocks = [
        BasicBlock("beacon_handler", mcu.beacon_processing),
        BasicBlock("packet_prepare", mcu.packet_preparation),
        BasicBlock("adc_sample", mcu.sample_acquisition),
    ]
    if config.app == "rpeak":
        blocks.append(BasicBlock("rpeak_algorithm", mcu.rpeak_algorithm))
    program = BlockProgram(blocks)

    cycle_s = config.cycle_ticks / 1e9
    cycles = config.measure_s / cycle_s
    samples = 2.0 * config.derived_sampling_hz() * config.measure_s
    program.count("beacon_handler", cycles)
    program.count("adc_sample", samples)
    if config.app == "rpeak":
        program.count("rpeak_algorithm", samples)
        reports = 2.0 * config.heart_rate_bpm / 60.0 * config.measure_s
        program.count("packet_prepare", reports)
    else:
        program.count("packet_prepare", cycles)
    return program


def estimate_mcu_energy(config: BanScenarioConfig,
                        mapping: CycleMapping,
                        program: BlockProgram = None) -> float:
    """PowerTOSSIM's CPU estimate for the window, in millijoules.

    Sleep floor plus counted-cycles active time at the active current
    (block counting sees no wake-up transitions — part of the paper's
    criticism of low-level effects being missed).
    """
    cal = config.calibration
    if program is None:
        program = build_program(config)
    active_s = mapping.cycles_for(program.counts()) / cal.mcu_clock_hz
    sleep_w = cal.mcu_sleep_a * cal.supply_v
    active_w = cal.mcu_active_a * cal.supply_v
    energy_j = sleep_w * config.measure_s \
        + (active_w - sleep_w) * active_s
    return energy_j * 1e3


def mapping_error_sweep(config: BanScenarioConfig,
                        relative_errors: Iterable[float],
                        reference_mj: float,
                        seed: int = 0) -> Dict[float, float]:
    """Estimation error as the block->cycle mapping degrades.

    Returns {mapping error: |estimate - reference| / reference}.
    """
    program = build_program(config)
    true_mapping = program.true_mapping()
    out: Dict[float, float] = {}
    for relative_error in relative_errors:
        mapping = true_mapping.perturbed(relative_error, seed=seed)
        estimate = estimate_mcu_energy(config, mapping, program)
        out[relative_error] = abs(estimate - reference_mj) / reference_mj
    return out


__all__ = [
    "BasicBlock",
    "BlockProgram",
    "CycleMapping",
    "build_program",
    "estimate_mcu_energy",
    "mapping_error_sweep",
]
