"""Event and event-queue primitives for the discrete-event kernel.

The queue is a binary heap keyed on ``(time, sequence)``.  The per-queue
monotonically increasing sequence number gives FIFO semantics among events
scheduled for the same instant, which is what makes the whole simulation
reproducible: the TinyOS task model (post order == run order) depends on
stable same-time ordering.

Fast-path layout
----------------

A scheduled event *is* its heap entry: a plain 5-slot list
``[time, seq, cancelled, callback, label]`` (indices :data:`EVT_TIME` ..
:data:`EVT_LABEL`).  Scheduling costs a single exact-``list``
allocation; heap sift comparisons only ever touch ``time`` and the
unique ``seq`` (plain int comparisons, no attribute lookups, no
tie-breaking object comparison); and the kernel's dispatch loop reads
the slots with C-specialised list indexing.  Cancellation is the O(1)
in-place flag write done by :func:`cancel_event` — cancelling twice, or
cancelling an event that already fired, is harmless.

:class:`Event` is the structured view over the same layout: a ``list``
subclass adding named accessors and ``cancel()``.  Instances are valid
heap entries (they compare exactly like raw entries), but the hot paths
deliberately build raw lists — constructing a subclass is ~2.5x the
cost of a list display, and the kernel dispatches millions of events.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional

#: Index of the absolute fire time in an event heap entry.
EVT_TIME = 0
#: Index of the FIFO tie-breaking sequence number.
EVT_SEQ = 1
#: Index of the lazy-cancellation flag.
EVT_CANCELLED = 2
#: Index of the zero-argument callback.
EVT_CALLBACK = 3
#: Index of the human-readable label.
EVT_LABEL = 4

#: Type alias for a scheduled event as stored on (and returned from) the
#: queue: ``[time, seq, cancelled, callback, label]``.
EventEntry = list


def cancel_event(event: EventEntry) -> None:
    """Mark ``event`` so it is skipped when it reaches the queue head.

    Cancellation is lazy (the heap entry is not removed) which keeps it
    O(1); the kernel discards cancelled entries on pop.  Works on raw
    entries and :class:`Event` instances alike; cancelling twice, or
    cancelling an event that already fired, is a no-op.
    """
    event[EVT_CANCELLED] = True


def event_cancelled(event: EventEntry) -> bool:
    """Whether :func:`cancel_event` has been called on ``event``."""
    return event[EVT_CANCELLED]


class Event(list):
    """Structured view of a scheduled callback (see the module docstring).

    Attributes (read-only properties over the underlying list slots):
        time: absolute simulation time (ticks) at which to fire.
        seq: tie-breaking sequence number, assigned by the queue.
        callback: zero-argument callable invoked when the event fires.
        label: human-readable description, used by tracing and error
            messages.  Keep it short; it is emitted once per fire when
            tracing is enabled.
    """

    __slots__ = ()

    def __init__(self, time: int, seq: int,
                 callback: Callable[[], None], label: str = "") -> None:
        list.__init__(self, (time, seq, False, callback, label))

    @property
    def time(self) -> int:
        """Absolute fire time in ticks."""
        return self[EVT_TIME]

    @property
    def seq(self) -> int:
        """FIFO tie-breaking sequence number."""
        return self[EVT_SEQ]

    @property
    def callback(self) -> Callable[[], None]:
        """The callable invoked when the event fires."""
        return self[EVT_CALLBACK]

    @property
    def label(self) -> str:
        """Human-readable description for traces and error messages."""
        return self[EVT_LABEL]

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self[EVT_CANCELLED]

    def cancel(self) -> None:
        """Cancel this event (see :func:`cancel_event`)."""
        self[EVT_CANCELLED] = True

    def __repr__(self) -> str:  # list repr would leak the raw layout
        state = " cancelled" if self[EVT_CANCELLED] else ""
        return (f"Event(time={self[EVT_TIME]}, seq={self[EVT_SEQ]}, "
                f"label={self[EVT_LABEL]!r}{state})")


class EventQueue:
    """Min-heap of event entries, ordered by (time, insertion order).

    ``len(queue)`` reports the number of *live* (non-cancelled) events;
    lazily cancelled stubs still sitting in the heap are excluded.  The
    count is an O(heap) scan so the push/pop fast paths carry no
    bookkeeping — event queues in BAN scenarios stay small (tens of
    entries) and the length is only consulted for diagnostics.
    """

    __slots__ = ("_heap", "_next_seq")

    def __init__(self) -> None:
        self._heap: List[EventEntry] = []
        self._next_seq = 0

    def __len__(self) -> int:
        cancelled_i = EVT_CANCELLED
        return sum(1 for event in self._heap if not event[cancelled_i])

    def push(self, time: int, callback: Callable[[], None],
             label: str = "") -> EventEntry:
        """Schedule ``callback`` at absolute ``time``; return its entry.

        The returned entry can be cancelled with :func:`cancel_event`.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        event = [time, seq, False, callback, label]
        heappush(self._heap, event)
        return event

    def pop(self) -> Optional[EventEntry]:
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when the queue holds no live events.  Cancelled
        entries encountered on the way are discarded.
        """
        heap = self._heap
        while heap:
            event = heappop(heap)
            if not event[EVT_CANCELLED]:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event, or ``None`` if empty.

        Cancelled entries at the head are discarded as a side effect, so
        the returned time always belongs to an event that will fire.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event[EVT_CANCELLED]:
                heappop(heap)
                continue
            return event[EVT_TIME]
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()


class SimulationError(RuntimeError):
    """Raised for kernel-level inconsistencies (e.g. scheduling in the past)."""


__all__ = ["Event", "EventEntry", "EventQueue", "SimulationError",
           "cancel_event", "event_cancelled",
           "EVT_TIME", "EVT_SEQ", "EVT_CANCELLED", "EVT_CALLBACK",
           "EVT_LABEL"]
