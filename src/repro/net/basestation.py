"""Base-station assembly.

The base station of the paper's BAN is the collecting device's radio
head: same MCU + radio hardware as a node (no sensing ASIC), running
the base-station side of the TDMA MAC.  It regulates the protocol
(beacons, slot grants) and delivers received application data to an
in-memory sink the experiments inspect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.calibration import ModelCalibration
from ..core.report import NodeEnergyResult
from ..hw.frames import Frame
from ..hw.mcu import Msp430
from ..hw.radio import Nrf2401
from ..phy.channel import Channel
from ..sim.kernel import Simulator
from ..sim.simtime import to_seconds
from ..sim.trace import TraceRecorder
from ..tinyos.components import Component, ComponentStack
from ..tinyos.scheduler import TaskScheduler

if TYPE_CHECKING:
    from ..obs.spans import SpanTracer


class BaseStation:
    """The BAN's collecting device (PC/PDA radio head)."""

    def __init__(self, sim: Simulator, channel: Channel,
                 calibration: ModelCalibration,
                 address: str = "base_station",
                 trace: Optional[TraceRecorder] = None) -> None:
        self.sim = sim
        self.address = address
        self.calibration = calibration
        self.mcu = Msp430(sim, calibration, name=f"{address}.mcu",
                          trace=trace)
        self.scheduler = TaskScheduler(sim, self.mcu,
                                       name=f"{address}.sched", trace=trace)
        self.radio = Nrf2401(sim, calibration, channel, address,
                             name=f"{address}.radio", trace=trace)
        self.stack = ComponentStack()
        self.mac: Optional[Component] = None
        #: Received data frames, by source node id.
        self.received: Dict[str, List[Frame]] = {}
        self._rx_log: List[Frame] = []
        #: (arrival time [s], frame) pairs, in delivery order.
        self.deliveries: List[tuple] = []

    def install_mac(self, mac: Component) -> Component:
        """Install the base-station MAC and hook its data sink."""
        if self.mac is not None:
            raise RuntimeError(f"{self.address}: MAC already installed")
        self.mac = self.stack.add(mac)
        mac.data_sink = self._deliver
        return mac

    def start(self) -> None:
        """Start the base-station stack."""
        self.stack.start_all()

    def attach_spans(self, tracer: "SpanTracer") -> None:
        """Point the base station's span hooks at ``tracer``.

        Same contract as :meth:`SensorNode.attach_spans`: ledger
        coefficients bound, ``spans`` set on scheduler, radio and MAC.
        """
        from ..hw.mcu import ACTIVE
        from ..hw.radio import RX, TX
        tracer.bind_node(self.address,
                         mcu_active_w=self.mcu.ledger.iv_coeff(ACTIVE),
                         radio_tx_w=self.radio.ledger.iv_coeff(TX),
                         radio_rx_w=self.radio.ledger.iv_coeff(RX),
                         mcu_clock_hz=self.calibration.mcu_clock_hz)
        self.scheduler.spans = tracer
        self.radio.spans = tracer
        # Only MACs that declare the hook slot consume spans; the ALOHA
        # family's collector has no span sites, and bolting the
        # attribute on anyway would widen the attach surface past what
        # the static OBS audit covers (determinism check 5).
        if self.mac is not None and hasattr(self.mac, "spans"):
            self.mac.spans = tracer

    def _deliver(self, frame: Frame) -> None:
        self.received.setdefault(frame.src, []).append(frame)
        self._rx_log.append(frame)
        self.deliveries.append((to_seconds(self.sim.now), frame))

    @property
    def frames_received(self) -> int:
        """Total data frames delivered upward."""
        return len(self._rx_log)

    def frames_from(self, node_id: str) -> List[Frame]:
        """Data frames received from one node."""
        return list(self.received.get(node_id, []))

    # ------------------------------------------------------------------
    # Measurement (the paper does not validate BS energy, but the model
    # reports it: the BS receiver is on almost continuously)
    # ------------------------------------------------------------------
    def reset_measurement(self) -> None:
        """Zero energy ledgers and the data log."""
        self.mcu.reset_measurement()
        self.radio.reset_measurement()
        self.received = {}
        self._rx_log = []
        self.deliveries = []

    def collect_result(self, horizon_s: float) -> NodeEnergyResult:
        """Freeze the base station's energy figures."""
        self.radio.finalize_attribution()
        radio_by_state = {state: 1e3 * joules for state, joules
                          in self.radio.ledger.energy_by_state().items()}
        mcu_by_state = {state: 1e3 * joules for state, joules
                        in self.mcu.ledger.energy_by_state().items()}
        return NodeEnergyResult(
            node_id=self.address,
            horizon_s=horizon_s,
            radio_mj=self.radio.energy_mj(),
            mcu_mj=self.mcu.energy_mj(),
            asic_mj=0.0,
            radio_by_state_mj=radio_by_state,
            mcu_by_state_mj=mcu_by_state,
            losses=self.radio.accountant.snapshot(),
            traffic=self.radio.snapshot_counters(),
        )

    def latest_rx_time_s(self) -> Optional[float]:
        """Simulation time of the most recent delivery (diagnostics)."""
        if not self._rx_log:
            return None
        return to_seconds(self.sim.now)


__all__ = ["BaseStation"]
