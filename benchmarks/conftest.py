"""Shared helpers for the benchmark harness.

Every published table/figure gets one benchmark that runs the full
reproduction once (``pedantic`` mode — these are minutes-scale
simulations, not microbenchmarks), prints the regenerated table next to
the paper's values, and records the accuracy metrics in
``benchmark.extra_info`` so they land in the JSON report.

``REPRO_BENCH_MEASURE_S`` shortens the measurement window (the energy
model is time-proportional; `tests/test_scenario.py` verifies
linearity), e.g.::

    REPRO_BENCH_MEASURE_S=10 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest


def bench_measure_s() -> float:
    """Measurement window for benchmark runs (default: the paper's 60 s)."""
    return float(os.environ.get("REPRO_BENCH_MEASURE_S", "60"))


@pytest.fixture
def measure_s() -> float:
    """Fixture wrapper around :func:`bench_measure_s`."""
    return bench_measure_s()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def record_table(benchmark, result) -> None:
    """Store a reproduced table's error metrics and print it."""
    benchmark.extra_info["table"] = result.table_id
    benchmark.extra_info["measure_s"] = result.measure_s
    for reference in ("real", "paper_sim"):
        for component in ("radio", "mcu"):
            key = f"err_{component}_vs_{reference}"
            benchmark.extra_info[key] = round(
                result.mean_error(reference, component), 4)
    print()
    print(result.render())
