"""Fault schedule descriptions (value types) and their parser.

Every fault is a frozen dataclass naming a node by its *unprefixed* id
(``"node1"``; multi-BAN prefixes are resolved by the injector against
its own scenario) and an absolute injection time in simulated seconds
(``at_s`` counts from t = 0, i.e. including warm-up).  A
:class:`FaultPlan` is an ordered tuple of such specs, optionally
including :class:`RandomFaults` entries that the injector expands
deterministically from the scenario seed.

The CLI mini-language accepted by :func:`parse_fault_spec` is a
semicolon-separated list of entries; each entry is a kind followed by
``key=value`` fields::

    crash,node=node1,at=5,reboot=3
    lockup,node=node2,at=8,dur=2
    beacons,node=node1,at=12,count=5
    clockstep,node=node1,at=20,ms=40
    brownout,node=node3,mah=0.02,soc=0.1
    random,count=4,horizon=30
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class NodeCrash:
    """Stop a node's software stack at ``at_s``; optionally reboot.

    The stack stops (app timers and MAC silenced), the radio is powered
    down once any in-flight transmission drains, and — when
    ``reboot_after_s`` is set — the stack restarts that many seconds
    later, re-entering acquisition like a cold node.
    """

    node: str
    at_s: float
    reboot_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        _check_node_time(self.node, self.at_s)
        if self.reboot_after_s is not None and self.reboot_after_s <= 0:
            raise ValueError(
                f"reboot_after_s must be positive: {self.reboot_after_s}")


@dataclass(frozen=True)
class RadioLockup:
    """Lock the node's receive path up for ``duration_s`` seconds.

    While locked, every captured frame is lost inside the radio (RX
    energy spent, MCU asleep) — the MAC sees only silence and walks its
    missed-beacon machinery.
    """

    node: str
    at_s: float
    duration_s: float

    def __post_init__(self) -> None:
        _check_node_time(self.node, self.at_s)
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive: {self.duration_s}")


@dataclass(frozen=True)
class BeaconLossBurst:
    """Drop the next ``count`` beacons captured by the node's radio."""

    node: str
    at_s: float
    count: int

    def __post_init__(self) -> None:
        _check_node_time(self.node, self.at_s)
        if self.count < 1:
            raise ValueError(f"count must be >= 1: {self.count}")


@dataclass(frozen=True)
class ClockStep:
    """Step the node's local clock by ``offset_ms`` at ``at_s``.

    The node's beacon-time bookkeeping shifts by the offset; steps
    larger than the guard lead cause missed beacons until resync.
    """

    node: str
    at_s: float
    offset_ms: float

    def __post_init__(self) -> None:
        _check_node_time(self.node, self.at_s)
        if self.offset_ms == 0:
            raise ValueError("offset_ms must be non-zero")


@dataclass(frozen=True)
class BatteryBrownout:
    """Crash the node permanently when its battery SoC falls below
    ``soc_threshold``.

    The injector attaches a :class:`~repro.net.monitor.BatteryMonitor`
    with a cell of ``capacity_mah``; the threshold crossing triggers an
    unrecoverable crash (no reboot — the cell is flat).
    """

    node: str
    capacity_mah: float
    soc_threshold: float = 0.05
    sample_period_s: float = 0.5

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("fault needs a node id")
        if self.capacity_mah <= 0:
            raise ValueError(
                f"capacity_mah must be positive: {self.capacity_mah}")
        if not 0.0 < self.soc_threshold < 1.0:
            raise ValueError(
                f"soc_threshold out of (0,1): {self.soc_threshold}")
        if self.sample_period_s <= 0:
            raise ValueError(
                f"sample_period_s must be positive: {self.sample_period_s}")


@dataclass(frozen=True)
class RandomFaults:
    """Placeholder expanded by the injector into ``count`` concrete
    transient faults (crash/reboot, lockup, beacon burst, clock step)
    drawn deterministically from the scenario seed via
    :func:`random_fault_plan`."""

    count: int
    horizon_s: float = 30.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1: {self.count}")
        if self.horizon_s <= 0:
            raise ValueError(
                f"horizon_s must be positive: {self.horizon_s}")


#: Any single fault entry a plan can hold.
FaultSpec = Union[NodeCrash, RadioLockup, BeaconLossBurst, ClockStep,
                  BatteryBrownout, RandomFaults]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, value-typed fault schedule for one scenario."""

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)


def _check_node_time(node: str, at_s: float) -> None:
    if not node:
        raise ValueError("fault needs a node id")
    if at_s < 0:
        raise ValueError(f"at_s must be >= 0: {at_s}")


def random_fault_plan(seed: int, node_ids: Sequence[str], count: int,
                      horizon_s: float = 30.0
                      ) -> Tuple[FaultSpec, ...]:
    """Draw ``count`` transient faults deterministically from ``seed``.

    The draw uses a private :class:`random.Random` seeded from the
    scenario seed (not the simulator's named streams), so expanding the
    plan never perturbs protocol randomness: a faulty run differs from
    a clean one only through the faults themselves.
    """
    if not node_ids:
        raise ValueError("need at least one node id")
    stream = _random.Random(f"repro.faults:{seed}")
    faults: list = []
    for _ in range(count):
        node = node_ids[stream.randrange(len(node_ids))]
        at_s = round(stream.uniform(0.1 * horizon_s, 0.9 * horizon_s), 3)
        kind = stream.randrange(4)
        if kind == 0:
            faults.append(NodeCrash(
                node=node, at_s=at_s,
                reboot_after_s=round(stream.uniform(0.5, 3.0), 3)))
        elif kind == 1:
            faults.append(RadioLockup(
                node=node, at_s=at_s,
                duration_s=round(stream.uniform(0.2, 2.0), 3)))
        elif kind == 2:
            faults.append(BeaconLossBurst(
                node=node, at_s=at_s, count=stream.randrange(1, 6)))
        else:
            faults.append(ClockStep(
                node=node, at_s=at_s,
                offset_ms=round(stream.uniform(-60.0, 60.0), 3) or 1.0))
    return tuple(faults)


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse the CLI fault mini-language (see module docstring)."""
    faults: list = []
    for raw_entry in text.split(";"):
        entry = raw_entry.strip()
        if not entry:
            continue
        parts = [part.strip() for part in entry.split(",")]
        kind = parts[0].lower()
        fields = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ValueError(
                    f"fault field {part!r} is not key=value "
                    f"(in entry {entry!r})")
            key, value = part.split("=", 1)
            fields[key.strip().lower()] = value.strip()
        try:
            faults.append(_build_entry(kind, fields))
        except KeyError as exc:
            raise ValueError(
                f"fault entry {entry!r} is missing field {exc}") from None
    if not faults:
        raise ValueError(f"no fault entries in {text!r}")
    return FaultPlan(faults=tuple(faults))


def _build_entry(kind: str, fields: dict) -> FaultSpec:
    if kind == "crash":
        reboot = fields.get("reboot")
        return NodeCrash(node=fields["node"], at_s=float(fields["at"]),
                         reboot_after_s=(float(reboot)
                                         if reboot is not None else None))
    if kind == "lockup":
        return RadioLockup(node=fields["node"], at_s=float(fields["at"]),
                           duration_s=float(fields["dur"]))
    if kind == "beacons":
        return BeaconLossBurst(node=fields["node"],
                               at_s=float(fields["at"]),
                               count=int(fields["count"]))
    if kind == "clockstep":
        return ClockStep(node=fields["node"], at_s=float(fields["at"]),
                         offset_ms=float(fields["ms"]))
    if kind == "brownout":
        return BatteryBrownout(
            node=fields["node"], capacity_mah=float(fields["mah"]),
            soc_threshold=float(fields.get("soc", 0.05)),
            sample_period_s=float(fields.get("period", 0.5)))
    if kind == "random":
        return RandomFaults(count=int(fields["count"]),
                            horizon_s=float(fields.get("horizon", 30.0)))
    raise ValueError(
        f"unknown fault kind {kind!r} (expected crash, lockup, beacons, "
        f"clockstep, brownout or random)")


__all__ = [
    "NodeCrash",
    "RadioLockup",
    "BeaconLossBurst",
    "ClockStep",
    "BatteryBrownout",
    "RandomFaults",
    "FaultSpec",
    "FaultPlan",
    "random_fault_plan",
    "parse_fault_spec",
]
