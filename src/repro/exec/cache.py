"""Deterministic on-disk memoization of scenario results.

A :class:`ResultCache` maps a *content hash* of everything that
determines a scenario's outcome to its pickled
:class:`~repro.core.report.NetworkEnergyResult`:

* the canonical serialization of the
  :class:`~repro.net.scenario.BanScenarioConfig` (recursively covering
  nested dataclasses, so the calibration constants, node specs,
  topology and loss model are all part of the key), and
* a *code-version salt*: a hash over the source text of every
  simulation-relevant ``repro`` subpackage, so any edit to the model
  invalidates the whole cache rather than silently serving stale
  energies.

Configs that embed arbitrary callables (e.g. a custom
``sync_policy_factory``) have no canonical serialization; hashing them
raises :class:`Uncacheable` and the executor simply runs them fresh,
counting the event in :class:`CacheStats`.

The simulator is deterministic — same config, same code, same result —
which is what makes content-addressed caching sound here.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import pickle
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

#: Bump to invalidate every existing cache entry on format changes.
SCHEMA_VERSION = 1

#: Subpackages whose source text feeds the code-version salt: everything
#: that can influence a simulated energy figure.  ``analysis`` is
#: deliberately absent — it only *consumes* results.
_SALTED_PACKAGES = ("core", "sim", "tinyos", "hw", "phy", "mac", "apps",
                    "signals", "net", "faults")

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


class Uncacheable(Exception):
    """Raised when a config has no canonical serialization.

    Typically because it embeds an arbitrary callable (custom
    ``sync_policy_factory``) or an object of a type the canonical
    encoder does not know to be value-like.
    """


def _encode(value: Any, out: list) -> None:
    """Append a canonical, unambiguous encoding of ``value`` to ``out``.

    Covers None, bools, ints, floats, strings, bytes, enums, sequences,
    mappings and (recursively) dataclasses.  Anything else — callables,
    open handles, arbitrary instances — raises :class:`Uncacheable`,
    because equality of such objects does not imply equal behaviour.
    """
    if isinstance(value, enum.Enum):
        cls = type(value)
        out.append(
            f"enum:{cls.__module__}.{cls.__qualname__}.{value.name};")
    elif value is None or isinstance(value, (bool, int, str, bytes)):
        out.append(f"{type(value).__name__}:{value!r};")
    elif isinstance(value, float):
        # hex() is exact: distinct floats never collide, equal floats
        # always encode identically (repr would do too, but hex is
        # explicit about it).
        out.append(f"float:{value.hex()};")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        out.append(f"dc:{cls.__module__}.{cls.__qualname__}(")
        for field in dataclasses.fields(value):
            out.append(f"{field.name}=")
            _encode(getattr(value, field.name), out)
        out.append(");")
    elif isinstance(value, (list, tuple)):
        out.append(f"{type(value).__name__}[")
        for item in value:
            _encode(item, out)
        out.append("];")
    elif isinstance(value, dict):
        out.append("dict{")
        for key in sorted(value, key=repr):
            _encode(key, out)
            out.append("->")
            _encode(value[key], out)
        out.append("};")
    else:
        raise Uncacheable(
            f"no canonical serialization for {type(value).__qualname__} "
            f"(value {value!r})")


def config_fingerprint(config: Any) -> str:
    """Canonical serialization of ``config`` (before hashing).

    Exposed for tests and debugging; raises :class:`Uncacheable` for
    configs embedding callables or unknown object types.
    """
    out: list = []
    _encode(config, out)
    return "".join(out)


def _compute_code_salt() -> str:
    """Hash the source of every simulation-relevant subpackage.

    Any change to the model (calibration tables, MAC logic, kernel,
    signal synthesis...) yields a different salt and therefore a cold
    cache — correctness over reuse.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256(f"schema={SCHEMA_VERSION};".encode())
    for package in _SALTED_PACKAGES:
        for source in sorted((package_root / package).rglob("*.py")):
            digest.update(source.relative_to(package_root).as_posix()
                          .encode())
            digest.update(source.read_bytes())
    return digest.hexdigest()[:16]


_code_salt: Optional[str] = None


def code_salt() -> str:
    """The process-wide code-version salt (computed once, then cached)."""
    global _code_salt
    if _code_salt is None:
        _code_salt = _compute_code_salt()
    return _code_salt


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one cache instance.

    Attributes:
        hits: results served from disk.
        misses: results computed and stored.
        uncacheable: configs that could not be hashed (run fresh,
            never stored).
    """

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses + uncacheable)."""
        return self.hits + self.misses + self.uncacheable

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports."""
        return {"hits": self.hits, "misses": self.misses,
                "uncacheable": self.uncacheable}

    def __str__(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.uncacheable} uncacheable")


class ResultCache:
    """Content-addressed store of scenario results.

    Args:
        root: cache directory; created lazily on the first store.
            Defaults to ``.repro_cache`` under the current directory.
        salt: override the code-version salt (tests only).

    Entry files are named ``<salt>-<config hash>.pkl``; a cold salt
    simply means old entries are never looked up again (stale files are
    harmless and can be deleted by removing the directory).
    """

    def __init__(self, root: Optional[str] = None,
                 salt: Optional[str] = None) -> None:
        self.root = Path(root if root is not None else DEFAULT_CACHE_DIR)
        self._salt = salt if salt is not None else code_salt()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def key_for(self, config: Any) -> str:
        """Cache key for ``config`` (raises :class:`Uncacheable`)."""
        fingerprint = config_fingerprint(config)
        digest = hashlib.sha256(fingerprint.encode()).hexdigest()[:32]
        return f"{self._salt}-{digest}"

    def _path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get(self, config: Any) -> Optional[Any]:
        """Cached result for ``config``, or None.

        Counts a hit or miss; uncacheable configs count separately and
        return None.  A corrupt entry is treated as a miss.
        """
        try:
            path = self._path_for(self.key_for(config))
        except Uncacheable:
            self.stats.uncacheable += 1
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: Any, result: Any) -> bool:
        """Store ``result`` under ``config``'s key.

        Returns False (and stores nothing) for uncacheable configs or
        unpicklable results.  Writes are atomic (temp file + rename) so
        a crashed run cannot leave a truncated entry.
        """
        try:
            path = self._path_for(self.key_for(config))
        except Uncacheable:
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(result, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            tmp.unlink(missing_ok=True)
            return False
        tmp.replace(path)
        return True

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """Paths of every stored entry (any salt)."""
        if self.root.is_dir():
            yield from sorted(self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed


__all__ = ["CacheStats", "ResultCache", "Uncacheable", "SCHEMA_VERSION",
           "DEFAULT_CACHE_DIR", "code_salt", "config_fingerprint"]
