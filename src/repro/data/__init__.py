"""Reference data: the paper's published tables and figure values."""

from .paper_tables import (
    ALL_TABLES,
    FIGURE_4,
    FIGURE_4_RPEAK_TOTAL_MJ,
    FIGURE_4_SAVING_FRACTION,
    FIGURE_4_STREAMING_TOTAL_MJ,
    PAPER_OVERALL_ERROR,
    TABLE_1,
    TABLE_2,
    TABLE_3,
    TABLE_4,
    Figure4Bar,
    PaperTable,
    TableRow,
)

__all__ = [
    "ALL_TABLES",
    "FIGURE_4",
    "FIGURE_4_RPEAK_TOTAL_MJ",
    "FIGURE_4_SAVING_FRACTION",
    "FIGURE_4_STREAMING_TOTAL_MJ",
    "PAPER_OVERALL_ERROR",
    "TABLE_1",
    "TABLE_2",
    "TABLE_3",
    "TABLE_4",
    "Figure4Bar",
    "PaperTable",
    "TableRow",
]
