"""TinyOS task representation.

A TinyOS *task* is a deferred, run-to-completion computation posted from
command/event context.  In this model a task carries:

* a zero-argument ``body`` executed when the task is dispatched, which
  performs the modelled side effects (push a frame to the radio FIFO,
  update application state, post further tasks), and
* a ``cycles`` cost: how long the MCU stays in active mode executing it.

The body runs at dispatch time and the MCU then remains busy for the
cost duration — fine-grained enough for an energy model whose smallest
observable is time-in-power-state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True, slots=True)
class Task:
    """One posted task.

    Attributes:
        body: the computation to run at dispatch.
        cycles: MCU active cost in core clock cycles (>= 0).
        label: short name for traces.
        task_id: post-order id, unique *within its scheduler* and
            assigned by it.  A process-global counter here would leak
            state between scenarios: the second run in one process
            would trace different serials than the first (repro.lint
            DET001-adjacent; caught by tools/determinism_check.py).
    """

    body: Callable[[], None]
    cycles: int
    label: str = ""
    task_id: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(
                f"task {self.label!r}: cycles must be >= 0, "
                f"got {self.cycles}")


__all__ = ["Task"]
