"""Power-state machine verification (rules SM001–SM005).

Time-in-state energy accounting is only as good as the state machine
feeding it: if the radio model can reach TX from POWER_DOWN, the
ledger happily books 17.54 mA against a state the nRF2401 cannot
physically enter from there.  This pass proves, statically, that the
transitions *encoded* in the component models are exactly the
transitions *declared* next to the calibration data.

Declared specs
--------------
Each component carries a :class:`repro.core.states.TransitionSpec`
(``MCU_TRANSITIONS``, ``RADIO_TRANSITIONS``, ``ASIC_TRANSITIONS`` in
``repro/core/states.py``): the state set, the initial state, the legal
``(src, dst)`` edges, and the *busy flags* — boolean attributes that
are documented to be equivalent to a state subset (``_tx_busy`` ⇔
``state == "tx"``), which is what lets guard clauses like ``if
self._tx_busy: raise`` narrow the analysis.  Specs are read from the
AST, never imported, so fixtures can co-locate a spec with the code it
describes.

Encoded graph
-------------
For every method of the spec'd class the pass walks statements
forward, tracking the *set of power states the component can be in*:

* entry is every declared state, unless the method carries a ``# sm:
  assume(state, ...)`` header annotation (for callbacks only ever
  scheduled from known states);
* ``if``-guards on ``self.<ledger>.state == CONST`` / ``in (A, B)``,
  boolean state properties (``is_sleeping``), and busy flags narrow
  the set along each branch, and branches that ``return``/``raise``
  prune their states from the fall-through;
* every ``<ledger>.transition(target)`` reached with possible states
  ``S`` contributes the edges ``{(s, target) for s in S, s != target}``
  (self-loops are re-tags, not transitions);
* lambdas are opaque: work scheduled via ``sim.after(...)`` is
  analysed in the method it calls, under that method's own entry
  assumption.

Rules
-----
* **SM001** — an encoded transition absent from the declared table, or
  a direct ``.transition(...)`` call outside any spec'd component
  (e.g. a MAC recovery path reaching into a radio's ledger).
* **SM002** — a declared transition no code path encodes (dead table
  rows rot just like stale waivers).
* **SM003** — a state with energy accounting (present in the
  component's :class:`PowerStateTable`) that is unreachable from the
  initial state in the declared graph.
* **SM004** — spec/code structural mismatch: unknown class, state-set
  or initial-state disagreement, or a transition target the analysis
  cannot resolve to a state name.
* **SM005** — a class that books energy through a
  :class:`~repro.core.ledger.PowerStateLedger` but declares no
  transition spec at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (Dict, FrozenSet, List, Optional, Sequence, Set,
                    Tuple)

from .config import LintConfig
from .dataflow import (literal_or_none, merge_envs,
                       module_string_constants, sm_assumptions,
                       walk_skipping_lambdas)
from .engine import FileContext, Finding

Edge = Tuple[str, str]
StateSet = FrozenSet[str]


@dataclass(frozen=True)
class SpecInfo:
    """A ``TransitionSpec`` literal read out of a module's AST."""

    component: str
    module: str
    class_name: str
    initial: str
    states: Tuple[str, ...]
    transitions: Tuple[Edge, ...]
    busy_flags: Tuple[Tuple[str, Tuple[str, ...]], ...]
    ctx: FileContext
    lineno: int


def _extract_specs(contexts: Sequence[FileContext]) -> List[SpecInfo]:
    specs: List[SpecInfo] = []
    for ctx in contexts:
        for stmt in ctx.tree.body:
            if not (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)):
                continue
            func = stmt.value.func
            name = func.attr if isinstance(func, ast.Attribute) \
                else getattr(func, "id", None)
            if name != "TransitionSpec":
                continue
            fields: Dict[str, object] = {}
            for keyword in stmt.value.keywords:
                if keyword.arg is not None:
                    fields[keyword.arg] = literal_or_none(
                        keyword.value)
            try:
                specs.append(SpecInfo(
                    component=str(fields["component"]),
                    module=str(fields["module"]),
                    class_name=str(fields["class_name"]),
                    initial=str(fields["initial"]),
                    states=tuple(fields["states"]),  # type: ignore
                    transitions=tuple(
                        (str(a), str(b))
                        for a, b in fields["transitions"]),  # type: ignore
                    busy_flags=tuple(
                        (str(flag), tuple(states)) for flag, states
                        in fields.get("busy_flags", ())),  # type: ignore
                    ctx=ctx, lineno=stmt.lineno))
            except (KeyError, TypeError, ValueError):
                specs.append(SpecInfo(
                    component="?", module="?", class_name="?",
                    initial="?", states=(), transitions=(),
                    busy_flags=(), ctx=ctx, lineno=stmt.lineno))
    return specs


def _find_class(ctx: FileContext,
                name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _ledger_info(cls: ast.ClassDef, constants: Dict[str, str]
                 ) -> Tuple[Optional[str], Optional[str], Set[str]]:
    """(ledger attribute name, initial state, table states) of a class."""
    attr: Optional[str] = None
    initial: Optional[str] = None
    table_states: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Attribute) \
                and isinstance(node.value, ast.Call):
            func = node.value.func
            callee = func.attr if isinstance(func, ast.Attribute) \
                else getattr(func, "id", None)
            if callee == "PowerStateLedger":
                attr = node.targets[0].attr
                for keyword in node.value.keywords:
                    if keyword.arg == "initial_state":
                        initial = _resolve_state(keyword.value,
                                                 constants, {})
        if isinstance(node, ast.Call):
            func = node.func
            callee = func.attr if isinstance(func, ast.Attribute) \
                else getattr(func, "id", None)
            if callee == "PowerState" and node.args:
                state = _resolve_state(node.args[0], constants, {})
                if state is not None:
                    table_states.add(state)
    return attr, initial, table_states


def _resolve_state(node: ast.AST, constants: Dict[str, str],
                   env: Dict[str, StateSet]) -> Optional[str]:
    """A single state name, or None when not statically a state."""
    states = _resolve_states(node, constants, env)
    if states is not None and len(states) == 1:
        return next(iter(states))
    return None


def _resolve_states(node: ast.AST, constants: Dict[str, str],
                    env: Dict[str, StateSet]) -> Optional[StateSet]:
    """Every state name ``node`` may evaluate to, or None if unknown."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return frozenset((node.value,))
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        if node.id in constants:
            return frozenset((constants[node.id],))
        return None
    if isinstance(node, ast.IfExp):
        first = _resolve_states(node.body, constants, env)
        second = _resolve_states(node.orelse, constants, env)
        if first is not None and second is not None:
            return first | second
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        combined: Set[str] = set()
        for element in node.elts:
            resolved = _resolve_states(element, constants, env)
            if resolved is None:
                return None
            combined |= resolved
        return frozenset(combined)
    return None


class _MethodWalker:
    """Forward possible-state walk over one method body."""

    def __init__(self, spec: SpecInfo, ctx: FileContext,
                 ledger_attr: str, constants: Dict[str, str],
                 properties: Dict[str, StateSet],
                 findings: List[Finding]) -> None:
        self.spec = spec
        self.ctx = ctx
        self.ledger_attr = ledger_attr
        self.constants = constants
        self.properties = properties
        self.findings = findings
        self.top: StateSet = frozenset(spec.states)
        self.edges: Dict[Edge, int] = {}

    # -- recognisers -------------------------------------------------

    def _is_ledger_state(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute)
                and node.attr == "state"
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == self.ledger_attr
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self")

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr
        return None

    def _attr_states(self, attr: str) -> Optional[StateSet]:
        if attr in self.properties:
            return self.properties[attr]
        for flag, states in self.spec.busy_flags:
            if flag == attr:
                return frozenset(states)
        return None

    def _transition_call(self, node: ast.Call) -> bool:
        func = node.func
        return (isinstance(func, ast.Attribute)
                and func.attr == "transition"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == self.ledger_attr
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self")

    # -- narrowing ---------------------------------------------------

    def narrow(self, test: ast.AST, cur: StateSet,
               env: Dict[str, StateSet]
               ) -> Tuple[StateSet, StateSet]:
        """(states where ``test`` may hold, states where it may not)."""
        if isinstance(test, ast.UnaryOp) \
                and isinstance(test.op, ast.Not):
            true_set, false_set = self.narrow(test.operand, cur, env)
            return false_set, true_set
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And):
                true_set = cur
                for value in test.values:
                    true_set, _ = self.narrow(value, true_set, env)
                return true_set, cur
            union: StateSet = frozenset()
            false_set = cur
            for value in test.values:
                value_true, value_false = self.narrow(value, cur, env)
                union |= value_true
                false_set &= value_false
            return union, false_set
        attr = self._self_attr(test)
        if attr is not None:
            implied = self._attr_states(attr)
            if implied is not None:
                return cur & implied, cur - implied
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, right = test.left, test.comparators[0]
            op = test.ops[0]
            if self._is_ledger_state(left):
                states = _resolve_states(right, self.constants, env)
                if states is not None:
                    return self._narrow_membership(op, cur, states)
            if self._is_ledger_state(right) \
                    and isinstance(op, (ast.Eq, ast.NotEq)):
                states = _resolve_states(left, self.constants, env)
                if states is not None:
                    return self._narrow_membership(op, cur, states)
        return cur, cur

    @staticmethod
    def _narrow_membership(op: ast.cmpop, cur: StateSet,
                           states: StateSet
                           ) -> Tuple[StateSet, StateSet]:
        """Narrowing for ``state <op> <states>``.

        ``==`` against a variable that may hold several values is only
        an *upper bound* on the true branch: its false branch cannot
        exclude anything (``state == target`` being false with
        ``target ∈ {sleep, deep_sleep}`` still allows ``state ==
        sleep``).  Membership tests (``in``) are exact both ways.
        """
        exact = len(states) == 1
        if isinstance(op, ast.Eq):
            return cur & states, (cur - states if exact else cur)
        if isinstance(op, ast.NotEq):
            return (cur - states if exact else cur), cur & states
        if isinstance(op, ast.In):
            return cur & states, cur - states
        if isinstance(op, ast.NotIn):
            return cur - states, cur & states
        return cur, cur


    # -- the walk ----------------------------------------------------

    def _emit(self, node: ast.Call, cur: StateSet,
              env: Dict[str, StateSet]) -> Optional[StateSet]:
        """Record edges for a transition call; returns the new state set."""
        target_node = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "state":
                target_node = keyword.value
        if target_node is None:
            return None
        targets = _resolve_states(target_node, self.constants, env)
        if targets is None:
            self.findings.append(self.ctx.finding_at(
                "SM004", node.lineno, node.col_offset,
                f"{self.spec.component}: cannot statically resolve "
                f"the target of this transition"))
            return None
        for target in targets:
            for src in cur:
                if src != target:
                    self.edges.setdefault((src, target), node.lineno)
        return targets

    def _scan_stmt_calls(self, stmt: ast.stmt, cur: StateSet,
                         env: Dict[str, StateSet]
                         ) -> Tuple[StateSet, bool]:
        """Emit edges for transition calls inside ``stmt``.

        Returns the possibly-updated state set and whether a
        transition was seen (an ``Expr`` statement whose call resolves
        to one target pins the state to that target).
        """
        new_cur = cur
        seen = False
        for node in walk_skipping_lambdas(stmt):
            if isinstance(node, ast.Call) \
                    and self._transition_call(node):
                seen = True
                targets = self._emit(node, new_cur, env)
                if targets is not None:
                    new_cur = targets
                else:
                    new_cur = self.top
        return new_cur, seen

    def exec_block(self, stmts: Sequence[ast.stmt],
                   state: Optional[Tuple[StateSet,
                                         Dict[str, StateSet]]]
                   ) -> Optional[Tuple[StateSet, Dict[str, StateSet]]]:
        for stmt in stmts:
            if state is None:
                return None
            state = self._exec_stmt(stmt, state)
        return state

    def _exec_stmt(self, stmt: ast.stmt,
                   state: Tuple[StateSet, Dict[str, StateSet]]
                   ) -> Optional[Tuple[StateSet, Dict[str, StateSet]]]:
        cur, env = state
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return state
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._scan_stmt_calls(stmt, cur, env)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return None
        if isinstance(stmt, ast.Assign):
            cur, _ = self._scan_stmt_calls(stmt, cur, env)
            value = _resolve_states(stmt.value, self.constants, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if value is not None:
                        env = dict(env)
                        env[target.id] = value
                    elif target.id in env:
                        env = dict(env)
                        del env[target.id]
            return cur, env
        if isinstance(stmt, ast.If):
            true_set, false_set = self.narrow(stmt.test, cur, env)
            true_state = self.exec_block(stmt.body,
                                         (true_set, dict(env)))
            false_state = self.exec_block(stmt.orelse,
                                          (false_set, dict(env)))
            alive = [s for s in (true_state, false_state)
                     if s is not None]
            if not alive:
                return None
            merged_cur: StateSet = frozenset()
            for branch_cur, _ in alive:
                merged_cur |= branch_cur
            merged_env = merge_envs([dict(e) for _, e in alive])
            return merged_cur, merged_env or {}
        if isinstance(stmt, (ast.While, ast.For)):
            entry_cur, entry_env = cur, dict(env)
            if isinstance(stmt, ast.For) \
                    and isinstance(stmt.target, ast.Name):
                entry_env.pop(stmt.target.id, None)
            seen = entry_cur
            for _ in range(4):
                result = self.exec_block(stmt.body,
                                         (seen, dict(entry_env)))
                if result is None:
                    break
                widened = seen | result[0]
                if widened == seen:
                    break
                seen = widened
            return seen, entry_env
        if isinstance(stmt, ast.Try):
            body_state = self.exec_block(stmt.body, (cur, dict(env)))
            reach = cur | (body_state[0] if body_state else
                           frozenset(target for _, target
                                     in self.edges))
            branches = [body_state]
            for handler in stmt.handlers:
                branches.append(self.exec_block(
                    handler.body, (reach, dict(env))))
            alive = [s for s in branches if s is not None]
            if not alive:
                return None
            merged: StateSet = frozenset()
            for branch_cur, _ in alive:
                merged |= branch_cur
            state2 = self.exec_block(stmt.finalbody, (merged, env))
            return state2
        if isinstance(stmt, ast.With):
            return self.exec_block(stmt.body, (cur, env))
        cur, _ = self._scan_stmt_calls(stmt, cur, env)
        return cur, env


def _class_properties(cls: ast.ClassDef, ledger_attr: str,
                      constants: Dict[str, str],
                      busy_flags: Dict[str, Tuple[str, ...]]
                      ) -> Dict[str, StateSet]:
    """Boolean properties equivalent to a state subset."""
    properties: Dict[str, StateSet] = {}
    for node in cls.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        returns = [stmt for stmt in node.body
                   if isinstance(stmt, ast.Return)]
        if len(returns) != 1 or returns[0].value is None:
            continue
        value = returns[0].value
        if isinstance(value, ast.Compare) and len(value.ops) == 1 \
                and isinstance(value.ops[0], (ast.Eq, ast.In)) \
                and isinstance(value.left, ast.Attribute) \
                and value.left.attr == "state":
            states = _resolve_states(value.comparators[0], constants,
                                     {})
            if states is not None:
                properties[node.name] = states
        elif isinstance(value, ast.Attribute) \
                and isinstance(value.value, ast.Name) \
                and value.value.id == "self" \
                and value.attr in busy_flags:
            properties[node.name] = frozenset(busy_flags[value.attr])
    return properties


def _reachable(initial: str, edges: Sequence[Edge]) -> Set[str]:
    seen = {initial}
    frontier = [initial]
    while frontier:
        src = frontier.pop()
        for a, b in edges:
            if a == src and b not in seen:
                seen.add(b)
                frontier.append(b)
    return seen


def _check_spec(spec: SpecInfo, contexts: Sequence[FileContext],
                findings: List[Finding],
                graphs: Dict[str, Dict[str, object]]) -> None:
    if spec.component == "?":
        findings.append(spec.ctx.finding_at(
            "SM004", spec.lineno, 0,
            "TransitionSpec is not a literal declaration (all fields "
            "must be static literals)"))
        return
    ctx = next((c for c in contexts
                if c.module_path == spec.module
                or c.module_path.endswith("/" + spec.module)
                or str(c.path).endswith(spec.module)), None)
    if ctx is None:
        return  # module not part of this run: nothing to verify
    cls = _find_class(ctx, spec.class_name)
    if cls is None:
        findings.append(spec.ctx.finding_at(
            "SM004", spec.lineno, 0,
            f"{spec.component}: class {spec.class_name!r} not found "
            f"in {spec.module}"))
        return
    constants = module_string_constants(ctx.tree)
    ledger_attr, initial, table_states = _ledger_info(cls, constants)
    if ledger_attr is None:
        findings.append(spec.ctx.finding_at(
            "SM004", spec.lineno, 0,
            f"{spec.component}: {spec.class_name} constructs no "
            f"PowerStateLedger"))
        return
    if table_states and table_states != set(spec.states):
        findings.append(spec.ctx.finding_at(
            "SM004", spec.lineno, 0,
            f"{spec.component}: declared states "
            f"{sorted(spec.states)} != encoded power-state table "
            f"{sorted(table_states)}"))
    if initial is not None and initial != spec.initial:
        findings.append(spec.ctx.finding_at(
            "SM004", spec.lineno, 0,
            f"{spec.component}: declared initial {spec.initial!r} != "
            f"encoded initial_state {initial!r}"))
    busy = {flag: states for flag, states in spec.busy_flags}
    properties = _class_properties(cls, ledger_attr, constants, busy)
    walker = _MethodWalker(spec, ctx, ledger_attr, constants,
                           properties, findings)
    assumptions = sm_assumptions(ctx.lines)
    for node in cls.body:
        if not isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            continue
        entry: StateSet = walker.top
        first_body = node.body[0].lineno if node.body else node.lineno
        for line in range(node.lineno, first_body + 1):
            assumed = assumptions.get(line)
            if assumed is not None:
                entry = frozenset(assumed) & walker.top
        walker.exec_block(node.body, (entry, {}))
    declared = set(spec.transitions)
    encoded = walker.edges
    for edge in sorted(set(encoded) - declared):
        findings.append(ctx.finding_at(
            "SM001", encoded[edge], 0,
            f"{spec.component}: encoded transition "
            f"{edge[0]!r} -> {edge[1]!r} is not declared in "
            f"{spec.class_name}'s TransitionSpec"))
    for edge in sorted(declared - set(encoded)):
        findings.append(spec.ctx.finding_at(
            "SM002", spec.lineno, 0,
            f"{spec.component}: declared transition "
            f"{edge[0]!r} -> {edge[1]!r} is never encoded in "
            f"{spec.module}"))
    reachable = _reachable(spec.initial, spec.transitions)
    for state in sorted(table_states - reachable):
        findings.append(spec.ctx.finding_at(
            "SM003", spec.lineno, 0,
            f"{spec.component}: state {state!r} has energy "
            f"accounting but no entry path from "
            f"{spec.initial!r} in the declared graph"))
    graphs[spec.component] = {
        "module": spec.module,
        "class": spec.class_name,
        "initial": spec.initial,
        "states": sorted(spec.states),
        "declared": sorted(list(edge) for edge in declared),
        "encoded": sorted(list(edge) for edge in encoded),
    }


def _in_packages(ctx: FileContext, packages: Sequence[str]) -> bool:
    head = ctx.module_path.split("/", 1)[0]
    return head in packages


def _scan_unspecced(contexts: Sequence[FileContext],
                    specs: Sequence[SpecInfo],
                    config: LintConfig,
                    findings: List[Finding]) -> None:
    spec_classes = {(spec.module, spec.class_name) for spec in specs}
    spec_modules = {spec.module for spec in specs}
    for ctx in contexts:
        if not _in_packages(ctx, config.sm_packages):
            continue
        covered = any(ctx.module_path == module
                      or ctx.module_path.endswith("/" + module)
                      or str(ctx.path).endswith(module)
                      for module in spec_modules)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                constants = module_string_constants(ctx.tree)
                attr, _, _ = _ledger_info(node, constants)
                if attr is not None and not any(
                        name == node.name
                        for module, name in spec_classes
                        if ctx.module_path == module
                        or ctx.module_path.endswith("/" + module)
                        or str(ctx.path).endswith(module)):
                    findings.append(ctx.finding_at(
                        "SM005", node.lineno, node.col_offset,
                        f"class {node.name} books energy through a "
                        f"PowerStateLedger but declares no "
                        f"TransitionSpec in repro/core/states.py"))
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "transition" \
                    and not covered:
                findings.append(ctx.finding_at(
                    "SM001", node.lineno, node.col_offset,
                    "power-state transition driven from outside the "
                    "owning component (call the component's API — "
                    "power_up()/sleep()/… — not its ledger)"))


def analyze_statemachines(contexts: Sequence[FileContext],
                          config: LintConfig
                          ) -> Tuple[List[Finding],
                                     Dict[str, object]]:
    """Run the state-machine verification over every parsed file."""
    findings: List[Finding] = []
    graphs: Dict[str, Dict[str, object]] = {}
    specs = _extract_specs(contexts)
    for spec in specs:
        _check_spec(spec, contexts, findings, graphs)
    _scan_unspecced(contexts, specs, config, findings)
    return findings, {"state_machines": graphs}


CODES = ("SM001", "SM002", "SM003", "SM004", "SM005")

__all__ = ["CODES", "SpecInfo", "analyze_statemachines"]
