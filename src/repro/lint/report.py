"""Lint reporters: human-readable text and machine-readable JSON.

The JSON document is the CI artifact (schema below); the text form is
what developers read locally.  Suppressed findings appear in both —
with their reasons — so waivers stay auditable instead of invisible.

JSON schema (``schema_version`` 4)::

    {
      "tool": "repro.lint",
      "schema_version": 4,
      "ok": bool,                 # gate: no unsuppressed findings
      "files_scanned": int,
      "summary": {
        "total": int,             # unsuppressed
        "suppressed": int,
        "stale_waivers": int,     # SUP002 findings (incl. waived)
        "by_rule": {"EXC001": int, ...}
      },
      "findings": [
        {"rule": str, "path": str, "line": int, "col": int,
         "message": str, "suppressed": bool, "reason": str|null},
        ...
      ],
      "analyses": {               # tree-analysis artifacts
        "state_machines": {       # per TransitionSpec component
          "radio": {"module": str, "class": str, "initial": str,
                    "states": [...], "declared": [[src, dst], ...],
                    "encoded": [[src, dst], ...]},
          ...
        },
        "call_graph": {           # whole-tree may-call graph
          "functions": int, "classes": int, "call_sites": int,
          "resolved_call_sites": int,
          "edges": [[caller_qualname, callee_qualname], ...]
        },
        "effects": {              # fixed-point effect inference
          "lattice": [...], "forbidden_in_hooks": [...],
          "functions": {"module::Class.method": ["io", ...], ...},
          "pure_pins": [...],
          "hooks": {"span_guards": [...], "hook_methods": [...]}
        },
        "fingerprint": {          # cache-fingerprint closure
          "roots": [...], "closure": [...],
          "checked_dataclasses": [...]
        },
        "lifecycle": {            # typestate verification artifacts
          "specs": [{"resource": str, "module": str,
                     "classes": [...], "boundary": [[a, r], ...]},
                    ...],
          "functions_walked": int,
          "boundary_obligations": int
        },
        "timings": {"units": float, "interproc": float, ...}
      }
    }

Version 2 added ``analyses`` (the verified state-machine graphs, so CI
artifacts double as machine-readable documentation of each component's
power-state topology) and ``summary.stale_waivers``.  Version 3 added
the interprocedural artifacts — ``call_graph``, per-function
``effects``, the ``fingerprint`` closure — and per-analysis
``timings``.  Version 4 added the ``lifecycle`` artifacts (the
declared protocols and how many boundary obligations were proven)
and, in parallel runs (``--jobs N``), ``timings.jobs`` plus
``timings.pool_wall``; the per-analysis timing keys are identical in
both modes (each pool task mirrors one sequential analysis, with the
effect/fingerprint/lifecycle passes sharing a single ``interproc``
call graph either way).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .engine import STALE_RULE, Finding, LintReport

SCHEMA_VERSION = 4


def finding_to_dict(finding: Finding) -> Dict[str, Any]:
    """One finding as a plain JSON-serialisable dict."""
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "suppressed": finding.suppressed,
        "reason": finding.reason,
    }


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    """The full report as the schema-versioned JSON document."""
    return {
        "tool": "repro.lint",
        "schema_version": SCHEMA_VERSION,
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "summary": {
            "total": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
            "stale_waivers": sum(1 for f in report.findings
                                 if f.rule == STALE_RULE),
            "by_rule": report.counts_by_rule(),
        },
        "findings": [finding_to_dict(f) for f in report.findings],
        "analyses": report.extras,
    }


def render_json(report: LintReport) -> str:
    """Serialise the report (stable key order, trailing newline)."""
    return json.dumps(report_to_dict(report), indent=2,
                      sort_keys=True) + "\n"


def render_text(report: LintReport, verbose_suppressed: bool = False
                ) -> str:
    """``path:line:col: CODE message`` lines plus a summary footer."""
    lines: List[str] = []
    for finding in report.findings:
        if finding.suppressed and not verbose_suppressed:
            continue
        marker = " (suppressed: %s)" % finding.reason \
            if finding.suppressed else ""
        lines.append(f"{finding.path}:{finding.line}:{finding.col}: "
                     f"{finding.rule} {finding.message}{marker}")
    unsuppressed = len(report.unsuppressed)
    suppressed = len(report.suppressed)
    if unsuppressed:
        by_rule = ", ".join(f"{code}×{count}" for code, count
                            in report.counts_by_rule().items())
        lines.append(f"{unsuppressed} finding(s) [{by_rule}] in "
                     f"{report.files_scanned} file(s); "
                     f"{suppressed} waived")
    else:
        lines.append(f"clean: {report.files_scanned} file(s), "
                     f"0 findings, {suppressed} reasoned waiver(s)")
    return "\n".join(lines) + "\n"


__all__ = ["SCHEMA_VERSION", "finding_to_dict", "render_json",
           "render_text", "report_to_dict"]
