"""Ablation A4: where does on-node preprocessing stop paying off?

Figure 4's 65% saving holds at 75 bpm with a 120 ms cycle.  This
ablation sweeps the input heart rate: Rpeak's radio traffic grows
linearly with beat rate while streaming's is constant, so the saving
erodes with heart rate (but remains decisive at any physiological
rate — the crossover would sit far beyond human physiology).  It also
sweeps the Rpeak TDMA cycle to expose the latency/energy trade-off the
paper describes.
"""

from conftest import bench_measure_s, run_once
from repro.analysis.sweep import sweep_heart_rate
from repro.net.scenario import BanScenario, BanScenarioConfig

HEART_RATES = (50.0, 75.0, 120.0, 180.0)
CYCLES_MS = (30.0, 60.0, 120.0)


def run_sweeps(measure_s: float):
    streaming = BanScenario(BanScenarioConfig(
        mac="static", app="ecg_streaming", num_nodes=5, cycle_ms=30.0,
        sampling_hz=205.0, measure_s=measure_s)).run()
    base = BanScenarioConfig(mac="static", app="rpeak", num_nodes=5,
                             cycle_ms=120.0, measure_s=measure_s)
    by_rate = sweep_heart_rate(base, HEART_RATES)
    by_cycle = [
        BanScenario(BanScenarioConfig(
            mac="static", app="rpeak", num_nodes=5, cycle_ms=cycle,
            measure_s=measure_s)).run().node("node1")
        for cycle in CYCLES_MS
    ]
    return streaming.node("node1"), by_rate, by_cycle


def test_ablation_preprocessing_tradeoff(benchmark):
    measure_s = bench_measure_s()
    streaming, by_rate, by_cycle = run_once(benchmark, run_sweeps,
                                            measure_s)

    print(f"\nA4 preprocessing trade-off over {measure_s:.0f} s "
          f"(streaming@30ms: {streaming.total_mj:.1f} mJ)")
    savings = []
    for point in by_rate:
        saving = 1.0 - point.total_mj / streaming.total_mj
        savings.append(saving)
        print(f"  Rpeak@120ms, {point.value:5.0f} bpm: "
              f"{point.total_mj:7.1f} mJ  saving {100 * saving:5.1f}%")
    for cycle, node in zip(CYCLES_MS, by_cycle):
        print(f"  Rpeak@{cycle:.0f}ms, 75 bpm: {node.total_mj:7.1f} mJ")

    benchmark.extra_info["saving_at_75bpm"] = round(savings[1], 3)
    benchmark.extra_info["saving_at_180bpm"] = round(savings[-1], 3)

    # The saving persists at every physiological heart rate...
    assert all(s > 0.55 for s in savings)
    # ...and erodes monotonically as the beat rate grows.
    assert savings == sorted(savings, reverse=True)
    # Longer Rpeak cycles trade report latency for energy, monotonically.
    totals = [node.total_mj for node in by_cycle]
    assert totals == sorted(totals, reverse=True)
