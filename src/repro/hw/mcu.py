"""TI MSP430F149 microcontroller model.

The paper models the MCU with exactly two power states (Section 4.1):

* **active** — 2.0 mA at 2.8 V, while executing code;
* **power saving** — 0.66 mA at 2.8 V (the first low-power mode; the
  TinyOS scheduler never needed a deeper one for these applications).

Software costs are expressed in core clock cycles (8 MHz in the case
studies) and converted to active time; waking from the power-saving mode
costs the datasheet's 6 us, which we book as active time before the first
task runs.

The model deliberately does *not* interpret instructions: like the
paper's, it is a time-in-state model driven by the TinyOS scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.calibration import ModelCalibration
from ..core.ledger import PowerStateLedger
from ..core.states import PowerState, PowerStateTable
from ..sim.kernel import Simulator
from ..sim.simtime import TICKS_PER_SECOND, seconds
from ..sim.trace import TraceRecorder

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

#: Name of the executing state.
ACTIVE = "active"
#: Name of the power-saving state (the paper's "power saving mode",
#: LPM0 — the only mode the case-study applications ever used).
SLEEP = "sleep"
#: Name of the deep power-saving state (LPM3-class; an extension — the
#: deep-sleep ablation's what-if, never entered unless a policy asks).
DEEP_SLEEP = "deep_sleep"


class Msp430:
    """Two-state MSP430 power model with cycle-based activity accounting.

    Args:
        sim: the simulation kernel.
        calibration: electrical and timing constants.
        name: instance name used in traces/reports (e.g. ``"node1.mcu"``).
    """

    def __init__(self, sim: Simulator, calibration: ModelCalibration,
                 name: str = "mcu",
                 trace: Optional[TraceRecorder] = None) -> None:
        self._sim = sim
        self._cal = calibration
        self.name = name
        self._trace = trace
        table = PowerStateTable([
            PowerState(ACTIVE, calibration.mcu_active_a),
            PowerState(SLEEP, calibration.mcu_sleep_a),
            PowerState(DEEP_SLEEP, calibration.mcu_deep_sleep_a),
        ])
        self.ledger = PowerStateLedger(
            sim, name, table, calibration.supply_v, initial_state=SLEEP)
        self._cycles_executed = 0
        self._wakeups = 0
        # cycles -> ticks memo: task cycle counts come from the small
        # calibrated cost table, so the dispatcher's per-task conversion
        # collapses to one dict hit.
        self._ticks_memo: dict = {}
        self._wake_latency_ticks = seconds(calibration.mcu_wakeup_s)

    # ------------------------------------------------------------------
    # State control (driven by the TinyOS scheduler)
    # ------------------------------------------------------------------
    @property
    def is_sleeping(self) -> bool:
        """Whether the core is in a power-saving state (any LPM)."""
        return self.ledger.state in (SLEEP, DEEP_SLEEP)

    @property
    def cycles_executed(self) -> int:
        """Total core clock cycles booked as executed."""
        return self._cycles_executed

    @property
    def wakeups(self) -> int:
        """Number of sleep -> active transitions."""
        return self._wakeups

    def wake(self) -> int:
        """Bring the core to active mode.

        Returns the wake-up latency in ticks (0 if already active); the
        caller (scheduler) delays the first task by that amount.  The
        latency interval is booked as active time, which is how the
        paper's measurement setup sees it.
        """
        if not self.is_sleeping:
            return 0
        self._wakeups += 1
        self.ledger.transition(ACTIVE, tag="wakeup")
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "wake", "")
        return self._wake_latency_ticks

    def begin_task(self, label: str = "") -> None:
        """Mark the start of task execution (re-tags active time)."""
        ledger = self.ledger
        if ledger._state != ACTIVE:  # is_sleeping, without the chain
            raise RuntimeError(
                f"{self.name}: task {label!r} started while sleeping; "
                "the scheduler must wake the core first")
        ledger.retag("task")

    def sleep(self, deep: bool = False) -> None:
        """Drop to a power-saving mode (task queue drained).

        ``deep=True`` selects the LPM3-class state the deep-sleep
        policy extension uses; the paper's validated behaviour is the
        default LPM0.  Re-selecting the depth while already sleeping is
        honoured (the power manager may deepen an ongoing sleep).
        """
        target = DEEP_SLEEP if deep else SLEEP
        if self.ledger.state == target:
            return
        self.ledger.transition(target)
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, target, "")

    # ------------------------------------------------------------------
    # Cost conversion
    # ------------------------------------------------------------------
    # The memo write below is value-deterministic (same key, same
    # value), so callers — including span hooks — observe a pure map.
    # effect: pure
    def cycles_to_ticks(self, cycles: int) -> int:
        """Duration of ``cycles`` core clock cycles, in simulation ticks."""
        ticks = self._ticks_memo.get(cycles)
        if ticks is None:
            if cycles < 0:
                raise ValueError(f"negative cycle count: {cycles}")
            ticks = round(cycles * TICKS_PER_SECOND / self._cal.mcu_clock_hz)
            self._ticks_memo[cycles] = ticks
        return ticks

    def account_cycles(self, cycles: int) -> None:
        """Book ``cycles`` into the executed-cycles counter."""
        self._cycles_executed += cycles

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def active_seconds(self) -> float:
        """Time spent in the active state so far, in seconds."""
        return self.ledger.seconds_in(ACTIVE)

    def energy_mj(self) -> float:
        """Total MCU energy so far, in millijoules."""
        return self.ledger.energy_mj()

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull this MCU's figures into a metrics registry.

        Per-state residency and energy as state timers, plus the
        executed-cycle and wakeup counters.  Read-only: call once per
        collected run.
        """
        residency = registry.state_timer("mcu", node, "residency_s")
        for state, state_s in self.ledger.seconds_by_state().items():
            residency.add(state, state_s)
        energy = registry.state_timer("mcu", node, "energy_mj")
        for state, joules in self.ledger.energy_by_state().items():
            energy.add(state, 1e3 * joules)
        registry.counter("mcu", node,
                         "cycles_executed").inc(self._cycles_executed)
        registry.counter("mcu", node, "wakeups").inc(self._wakeups)

    def reset_measurement(self) -> None:
        """Clear ledgers/counters at the start of a measurement window."""
        self.ledger.reset()
        self._cycles_executed = 0
        self._wakeups = 0


__all__ = ["Msp430", "ACTIVE", "SLEEP", "DEEP_SLEEP"]
