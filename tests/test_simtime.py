"""Unit tests for the time base and unit conversions."""

import pytest

from repro.sim import simtime


class TestUnitConversion:
    def test_second_is_1e9_ticks(self):
        assert simtime.seconds(1.0) == 1_000_000_000

    def test_millisecond(self):
        assert simtime.milliseconds(30.0) == 30_000_000

    def test_microsecond(self):
        assert simtime.microseconds(6.0) == 6_000

    def test_nanoseconds_identity(self):
        assert simtime.nanoseconds(125) == 125

    def test_fractional_values_round_to_nearest(self):
        assert simtime.microseconds(0.5) == 500
        assert simtime.microseconds(0.0004) == 0

    def test_roundtrip_seconds(self):
        assert simtime.to_seconds(simtime.seconds(60.0)) == pytest.approx(60.0)

    def test_roundtrip_milliseconds(self):
        assert simtime.to_milliseconds(simtime.milliseconds(7.25)) \
            == pytest.approx(7.25)

    def test_roundtrip_microseconds(self):
        assert simtime.to_microseconds(simtime.microseconds(195)) \
            == pytest.approx(195.0)

    def test_mcu_clock_cycle_is_exact(self):
        # 8 MHz -> 125 ns per cycle, representable exactly.
        assert simtime.seconds(1.0) // 8_000_000 == 125


class TestFormatTime:
    def test_zero(self):
        assert simtime.format_time(0) == "0 s"

    def test_nanoseconds(self):
        assert simtime.format_time(999) == "999 ns"

    def test_microseconds(self):
        assert simtime.format_time(1_500) == "1.500 us"

    def test_milliseconds(self):
        assert simtime.format_time(30_000_000) == "30.000 ms"

    def test_seconds(self):
        assert simtime.format_time(60 * simtime.TICKS_PER_SECOND) \
            == "60.000 s"


class TestAirtime:
    def test_one_bit_at_1mbps_is_1us(self):
        assert simtime.bits_duration(1, 1e6) == 1_000

    def test_26_byte_frame_at_1mbps(self):
        # The case studies' 18-byte-payload ShockBurst frame: 208 us.
        assert simtime.bytes_duration(26, 1e6) == 208_000

    def test_250kbps_rate(self):
        assert simtime.bits_duration(8, 250e3) == 32_000

    def test_zero_bits(self):
        assert simtime.bits_duration(0, 1e6) == 0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            simtime.bits_duration(-1, 1e6)

    def test_nonpositive_bitrate_rejected(self):
        with pytest.raises(ValueError):
            simtime.bits_duration(8, 0.0)
        with pytest.raises(ValueError):
            simtime.bits_duration(8, -1e6)
