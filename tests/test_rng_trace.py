"""Unit tests for the RNG registry and the trace recorder."""

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, TraceRecorder


class TestRngRegistry:
    def test_stream_is_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        forward = RngRegistry(9)
        x1 = forward.stream("x").random()
        _ = forward.stream("y").random()

        backward = RngRegistry(9)
        _ = backward.stream("y").random()
        x2 = backward.stream("x").random()
        assert x1 == x2

    def test_different_purposes_decorrelated(self):
        registry = RngRegistry(5)
        a = [registry.stream("a").random() for _ in range(4)]
        b = [registry.stream("b").random() for _ in range(4)]
        assert a != b

    def test_master_seed_property(self):
        assert RngRegistry(77).master_seed == 77

    def test_uniform_ticks_bounds(self):
        registry = RngRegistry(3)
        draws = [registry.uniform_ticks("t", 10, 20) for _ in range(200)]
        assert all(10 <= d <= 20 for d in draws)
        assert min(draws) == 10 and max(draws) == 20

    def test_uniform_ticks_empty_range_raises(self):
        with pytest.raises(ValueError):
            RngRegistry(0).uniform_ticks("t", 5, 4)

    def test_uniform_ticks_degenerate_range(self):
        assert RngRegistry(0).uniform_ticks("t", 7, 7) == 7


class TestTraceRecorder:
    def test_records_accumulate(self):
        trace = TraceRecorder()
        trace.record(1, "radio", "tx", "frame 1")
        trace.record(2, "radio", "rx", "frame 2")
        assert len(trace) == 2
        assert trace.total_recorded == 2

    def test_filter_by_source_and_kind(self):
        trace = TraceRecorder()
        trace.record(1, "radio", "tx", "")
        trace.record(2, "mcu", "tx", "")
        trace.record(3, "radio", "rx", "")
        assert len(trace.filter(source="radio")) == 2
        assert len(trace.filter(kind="tx")) == 2
        assert len(trace.filter(source="radio", kind="tx")) == 1

    def test_capacity_evicts_oldest(self):
        trace = TraceRecorder(capacity=3)
        for t in range(10):
            trace.record(t, "s", "k", str(t))
        assert len(trace) == 3
        assert trace.total_recorded == 10
        assert [r.detail for r in trace] == ["7", "8", "9"]

    def test_render_contains_fields(self):
        record = TraceRecord(1_500_000, "node1.radio", "tx_start", "beacon")
        line = record.render()
        assert "node1.radio" in line
        assert "tx_start" in line
        assert "beacon" in line
        assert "1.500 ms" in line

    def test_str_joins_lines(self):
        trace = TraceRecorder()
        trace.record(1, "a", "b", "c")
        trace.record(2, "d", "e", "f")
        assert len(str(trace).splitlines()) == 2

    def test_iteration_yields_records(self):
        trace = TraceRecorder()
        trace.record(5, "x", "y", "z")
        records = list(trace)
        assert records[0].time == 5
