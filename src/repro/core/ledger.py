"""Time-in-state energy ledger.

:class:`PowerStateLedger` is the measurement core of the energy model.  A
component owns one ledger; every power-state transition closes the open
interval and books its duration under ``(state, tag)``.  Energy follows
the paper's formula ``E = I * Vdd * t_state`` (Section 4.1).

Tags subdivide a state without changing the electrical model: the radio,
for example, distinguishes RX time spent idle-listening from RX time spent
receiving a packet by re-tagging the open interval when a packet starts.
The per-state totals are always the sum over tags, which the test suite
checks as an invariant.

Fast path
---------

``transition`` is called once or more per dispatched event (every MCU
wake/task/sleep and every radio mode change), so it is written for the
kernel's throughput rather than for symmetry with the query side:

* time ticks accumulate in a plain ``dict`` of ints (no defaultdict
  factory call per booking);
* per-state currents and ``I * Vdd`` energy coefficients are
  precomputed at construction, so queries never chase
  ``table[s].current_a`` attribute chains (the products are formed once
  with the same left-associated expression the queries used, keeping
  every reported float bit-identical);
* a transition to the *same* ``(state, tag)`` — the dominant case for
  back-to-back task dispatches re-tagging ``active/task`` — leaves the
  open interval open instead of splitting it.  The split and unsplit
  bookings sum the same integer tick count, so every query is exact;
  the transition counter and the observer still see the call.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim.kernel import Simulator
from .states import PowerStateTable


class PowerStateLedger:
    """Books time and energy per (power state, tag) for one component.

    Args:
        sim: the simulator providing the clock; the ledger registers an
            end hook so the open interval is closed at the horizon.
        component: name used in reports (e.g. ``"radio"``).
        table: the component's power states.
        supply_v: supply voltage, used for E = I * V * t.
        initial_state: state the component starts in at t=0.
    """

    __slots__ = ("_sim", "component", "table", "supply_v", "_state",
                 "_tag", "_entered", "_ticks", "_transitions", "_closed",
                 "on_transition", "_current_a", "_iv_coeff")

    def __init__(self, sim: Simulator, component: str,
                 table: PowerStateTable, supply_v: float,
                 initial_state: str) -> None:
        if supply_v <= 0:
            raise ValueError(f"supply voltage must be positive: {supply_v}")
        self._sim = sim
        self.component = component
        self.table = table
        self.supply_v = supply_v
        # Per-state current and I*Vdd coefficient, precomputed once.  The
        # coefficient is formed exactly as the queries formed it
        # (current * supply, then * time), so energies are bit-identical.
        self._current_a: Dict[str, float] = {
            state.name: state.current_a for state in table}
        self._iv_coeff: Dict[str, float] = {  # unit: W
            state.name: state.current_a * supply_v for state in table}
        self._state = table[initial_state].name
        self._tag = self._state
        self._entered = sim.now
        self._ticks: Dict[Tuple[str, str], int] = {}
        self._transitions = 0
        self._closed = False
        #: Optional observer called as ``(time, state, tag)`` after every
        #: transition — used by waveform exporters; None costs nothing.
        self.on_transition = None
        sim.add_end_hook(self.close)

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Name of the current power state."""
        return self._state

    @property
    def tag(self) -> str:
        """Tag under which the open interval is being booked."""
        return self._tag

    @property
    def transitions(self) -> int:
        """Number of state/tag transitions performed so far."""
        return self._transitions

    def transition(self, state: str, tag: Optional[str] = None) -> None:
        """Move to ``state``, booking the interval spent in the old one.

        ``tag`` defaults to the state name.  Transitioning to the current
        state with a different tag is the supported way to re-attribute
        time from the current instant onward.
        """
        if state not in self._current_a:
            self.table[state]  # raises the canonical unknown-state error
        if tag is None:
            tag = state
        now = self._sim._now  # hot path: skip the property (see kernel)
        current_state = self._state
        if state == current_state and tag == self._tag:
            # Same (state, tag): keep the interval open.  Splitting it
            # here and summing later books the same integer tick count,
            # so every query result is unchanged.
            self._transitions += 1
            self._closed = False
            observer = self.on_transition
            if observer is not None:
                observer(now, current_state, tag)
            return
        elapsed = now - self._entered
        if elapsed > 0:
            key = (current_state, self._tag)
            ticks = self._ticks
            ticks[key] = ticks.get(key, 0) + elapsed
        self._state = state
        self._tag = tag
        self._entered = now
        self._transitions += 1
        self._closed = False
        observer = self.on_transition
        if observer is not None:
            observer(now, state, tag)

    def retag(self, tag: str) -> None:
        """Re-tag the open interval from now on, staying in the same state."""
        self.transition(self._state, tag)

    def close(self) -> None:
        """Book the open interval up to the current instant.

        Idempotent; called by the simulator's end hook so that queries
        after a run cover exactly the simulated duration.
        """
        self._book_open_interval()
        self._entered = self._sim.now
        self._closed = True

    def reset(self) -> None:
        """Discard all booked intervals and re-open at the current instant.

        Used by scenarios to start the measurement window after warm-up
        (joins, first-beacon alignment) so the reported energy covers an
        exact steady-state horizon, as the paper's 60 s measurements do.
        The current state is preserved.
        """
        self._ticks.clear()
        self._entered = self._sim.now
        self._transitions = 0
        self._closed = False

    def _book_open_interval(self) -> None:
        elapsed = self._sim.now - self._entered
        if elapsed > 0:
            key = (self._state, self._tag)
            ticks = self._ticks
            ticks[key] = ticks.get(key, 0) + elapsed

    # ------------------------------------------------------------------
    # Queries (all implicitly include the open interval)
    # ------------------------------------------------------------------
    def _live_ticks(self) -> Dict[Tuple[str, str], int]:
        result = dict(self._ticks)
        open_elapsed = self._sim.now - self._entered
        if open_elapsed > 0:
            key = (self._state, self._tag)
            result[key] = result.get(key, 0) + open_elapsed
        return result

    def ticks_in(self, state: Optional[str] = None,
                 tag: Optional[str] = None) -> int:
        """Total ticks booked, filtered by state and/or tag."""
        return sum(t for (s, g), t in self._live_ticks().items()
                   if (state is None or s == state)
                   and (tag is None or g == tag))

    def seconds_in(self, state: Optional[str] = None,
                   tag: Optional[str] = None) -> float:
        """Total seconds booked, filtered by state and/or tag."""
        from ..sim.simtime import to_seconds
        return to_seconds(self.ticks_in(state, tag))

    def charge_c(self, state: Optional[str] = None,
                 tag: Optional[str] = None) -> float:
        """Total charge drawn in coulombs (I * t), filtered."""
        from ..sim.simtime import to_seconds
        current_a = self._current_a
        total = 0.0
        for (s, g), ticks in self._live_ticks().items():
            if (state is None or s == state) and (tag is None or g == tag):
                total += current_a[s] * to_seconds(ticks)
        return total

    def energy_j(self, state: Optional[str] = None,
                 tag: Optional[str] = None) -> float:
        """Total energy in joules (E = I * Vdd * t), filtered."""
        return self.charge_c(state, tag) * self.supply_v

    def energy_mj(self, state: Optional[str] = None,
                  tag: Optional[str] = None) -> float:
        """Total energy in millijoules (the unit the paper reports)."""
        return self.energy_j(state, tag) * 1e3

    def seconds_by_state(self) -> Dict[str, float]:
        """Residency in seconds per state name (the metrics view)."""
        out: Dict[str, float] = {}
        from ..sim.simtime import to_seconds
        for (s, _), ticks in self._live_ticks().items():
            out[s] = out.get(s, 0.0) + to_seconds(ticks)
        return out

    def iv_coeff(self, state: str) -> float:
        """The I*Vdd power coefficient [W] for ``state``.

        This is the exact float every energy query multiplies by
        time-in-state, exposed so derived attributions (the spans
        layer's per-phase energies) can use the identical expression
        and differ from ledger totals only by float addition order.
        """
        if state not in self._iv_coeff:
            self.table[state]  # raises the canonical unknown-state error
        return self._iv_coeff[state]

    def energy_by_state(self) -> Dict[str, float]:
        """Energy in joules per state name."""
        out: Dict[str, float] = {}
        from ..sim.simtime import to_seconds
        iv_coeff = self._iv_coeff
        for (s, _), ticks in self._live_ticks().items():
            out[s] = out.get(s, 0.0) + iv_coeff[s] * to_seconds(ticks)
        return out

    def energy_by_tag(self) -> Dict[str, float]:
        """Energy in joules per tag."""
        out: Dict[str, float] = {}
        from ..sim.simtime import to_seconds
        iv_coeff = self._iv_coeff
        for (s, g), ticks in self._live_ticks().items():
            out[g] = out.get(g, 0.0) + iv_coeff[s] * to_seconds(ticks)
        return out

    def average_power_w(self, horizon_ticks: Optional[int] = None) -> float:
        """Average power over ``horizon_ticks`` (defaults to sim.now)."""
        from ..sim.simtime import to_seconds
        horizon = self._sim.now if horizon_ticks is None else horizon_ticks
        if horizon <= 0:
            return 0.0
        return self.energy_j() / to_seconds(horizon)


__all__ = ["PowerStateLedger"]
