"""Closed-form (analytic) energy predictor.

In steady state the paper's workloads are strictly periodic, so their
energy has a closed form: per TDMA cycle the radio spends one
beacon-listen window at the RX current plus — when there is data — one
ShockBurst event at the TX current, and the MCU runs a fixed set of
calibrated tasks.  This module evaluates that arithmetic directly from
a :class:`~repro.net.scenario.BanScenarioConfig`, without simulating.

Uses:

* **cross-validation** — the test suite asserts the event-driven
  simulator lands on the analytic value (no double-booked or leaked
  energy);
* **instant what-ifs** — the analytic model answers parameter sweeps in
  microseconds, with the simulator reserved for scenarios its
  assumptions break (joins, losses, collisions, clock skew);
* **transparency** — the formula *is* the documentation of what the
  simulator does in the nominal case.

Assumptions (violations are what the simulator exists for): perfect
channel, ideal clocks, preassigned slots, steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.calibration import ModelCalibration
from ..mac.messages import beacon_payload_bytes
from ..net.scenario import BanScenarioConfig
from ..apps.rpeak import BEAT_PAYLOAD_BYTES
from ..sim.simtime import to_seconds


@dataclass(frozen=True)
class AnalyticEnergy:
    """Closed-form prediction for one node over the configured window."""

    radio_mj: float
    mcu_mj: float
    asic_mj: float
    #: Constituents, for explanation.
    beacon_window_s: float
    cycles: float
    tx_events_per_cycle: float
    mcu_active_s: float

    @property
    def total_mj(self) -> float:
        """Radio + MCU (the paper's reported quantity)."""
        return self.radio_mj + self.mcu_mj


def beacon_window_s(config: BanScenarioConfig) -> float:
    """Realised beacon-listen window: lead + beacon airtime + RX tail."""
    cal = config.calibration
    timing = cal.radio_timing
    if config.mac == "static":
        lead_s = cal.sync.static_lead_s
        slots = config.effective_num_slots
    else:
        cycle_s = to_seconds(config.cycle_ticks)
        lead_s = cal.sync.dynamic_base_lead_s \
            + cal.sync.dynamic_drift_coeff * cycle_s
        slots = config.num_nodes
    airtime = timing.airtime_s(beacon_payload_bytes(slots))
    return lead_s + airtime + timing.rx_tail_s


def predict(config: BanScenarioConfig) -> AnalyticEnergy:
    """Predict one node's energy for ``config`` analytically.

    Supports both MACs and both applications under the nominal-case
    assumptions listed in the module docstring.
    """
    cal: ModelCalibration = config.calibration
    timing = cal.radio_timing
    costs = cal.mcu_costs

    cycle_s = to_seconds(config.cycle_ticks)
    cycles = config.measure_s / cycle_s
    window = beacon_window_s(config)

    if config.app == "ecg_streaming":
        tx_per_cycle = 1.0
        tx_event = timing.tx_event_s(config.payload_bytes)
        prep_per_cycle = 1.0
        sample_cost = costs.sample_acquisition
    else:  # rpeak: one report per beat per channel
        reports_per_s = 2.0 * config.heart_rate_bpm / 60.0
        tx_per_cycle = min(1.0, reports_per_s * cycle_s)
        tx_event = timing.tx_event_s(BEAT_PAYLOAD_BYTES)
        prep_per_cycle = tx_per_cycle
        sample_cost = costs.sample_acquisition + costs.rpeak_algorithm

    rx_w = cal.radio_rx_a * cal.supply_v
    tx_w = cal.radio_tx_a * cal.supply_v
    radio_j = cycles * (window * rx_w + tx_per_cycle * tx_event * tx_w)

    sampling_hz = config.derived_sampling_hz()
    samples = 2.0 * sampling_hz * config.measure_s  # two channels
    active_s = (
        cycles * costs.cycles_to_seconds(costs.beacon_processing)
        + cycles * prep_per_cycle
        * costs.cycles_to_seconds(costs.packet_preparation)
        + samples * costs.cycles_to_seconds(sample_cost)
    )
    # One wake-up transition per sample tick, beacon and TX slot.
    wakeups = samples + cycles * (1.0 + prep_per_cycle)
    active_s += wakeups * cal.mcu_wakeup_s

    sleep_w = cal.mcu_sleep_a * cal.supply_v
    active_w = cal.mcu_active_a * cal.supply_v
    mcu_j = sleep_w * config.measure_s + (active_w - sleep_w) * active_s

    asic_j = cal.asic_power_w * config.measure_s

    return AnalyticEnergy(
        radio_mj=radio_j * 1e3,
        mcu_mj=mcu_j * 1e3,
        asic_mj=asic_j * 1e3,
        beacon_window_s=window,
        cycles=cycles,
        tx_events_per_cycle=tx_per_cycle,
        mcu_active_s=active_s,
    )


def explain(config: BanScenarioConfig) -> str:
    """Human-readable derivation of the analytic prediction."""
    pred = predict(config)
    cal = config.calibration
    lines = [
        f"Analytic energy for {config.app} over {config.mac} TDMA, "
        f"{config.measure_s:.0f} s:",
        f"  cycle {config.cycle_ticks / 1e6:.0f} ms "
        f"-> {pred.cycles:.1f} cycles",
        f"  beacon window {1e3 * pred.beacon_window_s:.3f} ms/cycle at "
        f"{1e3 * cal.radio_rx_a * cal.supply_v:.2f} mW (RX)",
        f"  {pred.tx_events_per_cycle:.2f} TX events/cycle at "
        f"{1e3 * cal.radio_tx_a * cal.supply_v:.2f} mW",
        f"  radio: {pred.radio_mj:.1f} mJ",
        f"  MCU active {pred.mcu_active_s:.2f} s of "
        f"{config.measure_s:.0f} s -> {pred.mcu_mj:.1f} mJ",
        f"  ASIC (constant {1e3 * cal.asic_power_w:.1f} mW): "
        f"{pred.asic_mj:.1f} mJ",
        f"  total (radio+MCU): {pred.total_mj:.1f} mJ",
    ]
    return "\n".join(lines)


__all__ = ["AnalyticEnergy", "beacon_window_s", "predict", "explain"]
