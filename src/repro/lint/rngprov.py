"""RNG provenance analysis (rules RNG001–RNG002).

PR 4's DET001 bans the *global* stream (``random.random()``); this
pass hardens that to a positive property: every ``random.Random`` /
``numpy.random.default_rng`` constructed anywhere in the tree must be
seeded with a value that *provably derives from a seed* — a parameter
or attribute whose name involves ``seed``, or a Simulator-owned stream
(``rng.stream(purpose)`` hashes the master seed).  That is the
invariant the determinism checker relies on: re-running a scenario
with the same config must replay every draw, which a generator seeded
from a counter, an id, or OS entropy silently breaks (the PR 4 frame-id
bug was exactly this shape).

The pass is a small forward taint analysis per function body:

* **Taint sources** — any identifier or attribute whose name contains
  ``seed`` (``seed``, ``master_seed``, ``self._seed``, ``reseed``…),
  and any call whose dotted name contains ``seed``, ``stream``, or
  ``derive`` (a function *named* for seed derivation is trusted to do
  it; its own body is checked where it is defined).
* **Propagation** — through arithmetic, f-strings, ``str``/``int``/
  ``hash``-style wrapping, tuple packing, and local assignment chains:
  an expression is seed-derived iff any of its leaves is.
* **Sinks** — ``random.Random(x)`` / ``default_rng(x)`` constructor
  arguments.

Rules:

* **RNG001** — an RNG constructed with *no* argument: OS entropy,
  never reproducible.
* **RNG002** — an RNG whose seed expression does not derive from a
  seed (a hard-coded literal, a counter, an id, wall-clock…).

A literal-seeded ``Random(1234)`` is deliberately a finding: fixed
magic seeds hide in tests and helper scripts, collide across
components, and bypass the per-purpose stream split
(:meth:`repro.sim.rng.RngRegistry.stream`).  Where a literal is truly
intended, waive it with a reason.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

from .config import LintConfig
from .dataflow import merge_envs, walk_skipping_lambdas
from .engine import FileContext, Finding

#: Substrings marking a name as seed-bearing.
_SEED_TOKENS = ("seed",)

#: Substrings marking a *callable* as producing seed-derived values.
_DERIVING_CALL_TOKENS = ("seed", "stream", "derive", "rng")

#: Constructor names that are RNG sinks (last dotted component).
_RNG_CTORS = ("Random", "SystemRandom", "default_rng",
              "RandomState", "Generator")


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _name_is_seedy(name: str) -> bool:
    lowered = name.lower()
    return any(token in lowered for token in _SEED_TOKENS)


class _TaintScope:
    """Seed-taint evaluation over one function (or module) body."""

    def __init__(self, ctx: FileContext,
                 findings: List[Finding]) -> None:
        self.ctx = ctx
        self.findings = findings

    # -- expression taint -------------------------------------------

    def tainted(self, node: ast.AST, env: Set[str]) -> bool:
        """Whether any leaf of ``node`` is seed-derived."""
        for sub in walk_skipping_lambdas(node):
            if isinstance(sub, ast.Name):
                if sub.id in env or _name_is_seedy(sub.id):
                    return True
            elif isinstance(sub, ast.Attribute):
                if _name_is_seedy(sub.attr):
                    return True
            elif isinstance(sub, ast.Call):
                dotted = _dotted(sub.func).lower()
                callee = dotted.rsplit(".", 1)[-1]
                if any(token in callee
                       for token in _DERIVING_CALL_TOKENS):
                    return True
        return False

    # -- sinks -------------------------------------------------------

    def _check_ctor(self, node: ast.Call, env: Set[str]) -> None:
        callee = _dotted(node.func).rsplit(".", 1)[-1]
        if callee not in _RNG_CTORS:
            return
        if callee == "SystemRandom":
            self.findings.append(self.ctx.finding_at(
                "RNG001", node.lineno, node.col_offset,
                "SystemRandom draws OS entropy: runs are not "
                "reproducible"))
            return
        seed_args = list(node.args) + [
            keyword.value for keyword in node.keywords
            if keyword.arg in (None, "seed", "x")]
        if not seed_args:
            self.findings.append(self.ctx.finding_at(
                "RNG001", node.lineno, node.col_offset,
                f"{callee}() constructed without a seed draws OS "
                f"entropy: runs are not reproducible"))
            return
        if not any(self.tainted(arg, env) for arg in seed_args):
            self.findings.append(self.ctx.finding_at(
                "RNG002", node.lineno, node.col_offset,
                f"{callee}(...) seed does not derive from a seed "
                f"parameter or Simulator-owned stream (hard-coded "
                f"or counter-derived seeds break replay)"))

    # -- statement walk ---------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt],
                   env: Optional[Set[str]]) -> Optional[Set[str]]:
        for stmt in stmts:
            if env is None:
                return None
            env = self._exec_stmt(stmt, env)
        return env

    def _scan_calls(self, node: ast.AST, env: Set[str]) -> None:
        for sub in walk_skipping_lambdas(node):
            if isinstance(sub, ast.Call):
                self._check_ctor(sub, env)

    def _exec_stmt(self, stmt: ast.stmt,
                   env: Set[str]) -> Optional[Set[str]]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env
        if isinstance(stmt, ast.Assign):
            self._scan_calls(stmt.value, env)
            is_tainted = self.tainted(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if is_tainted:
                        env.add(target.id)
                    else:
                        env.discard(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name) \
                                and is_tainted:
                            env.add(element.id)
            return env
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None:
                self._scan_calls(stmt.value, env)
                target = stmt.target
                if isinstance(target, ast.Name):
                    if self.tainted(stmt.value, env) or (
                            isinstance(stmt, ast.AugAssign)
                            and target.id in env):
                        env.add(target.id)
                    elif isinstance(stmt, ast.AnnAssign):
                        env.discard(target.id)
            return env
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if getattr(stmt, "value", None) is not None:
                self._scan_calls(stmt.value, env)  # type: ignore
            exc = getattr(stmt, "exc", None)
            if exc is not None:
                self._scan_calls(exc, env)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return None
        if isinstance(stmt, ast.If):
            self._scan_calls(stmt.test, env)
            branches = [
                self.exec_block(stmt.body, set(env)),
                self.exec_block(stmt.orelse, set(env)),
            ]
            alive = [b for b in branches if b is not None]
            if not alive:
                return None
            merged = set(alive[0])
            for branch in alive[1:]:
                merged &= branch
            return merged
        if isinstance(stmt, (ast.While, ast.For)):
            head = stmt.test if isinstance(stmt, ast.While) \
                else stmt.iter
            self._scan_calls(head, env)
            entry = set(env)
            if isinstance(stmt, ast.For):
                if isinstance(stmt.target, ast.Name) \
                        and self.tainted(stmt.iter, env):
                    entry.add(stmt.target.id)
            body_env = self.exec_block(stmt.body, set(entry))
            result = entry & body_env if body_env is not None \
                else entry
            return self.exec_block(stmt.orelse, set(result)) \
                if stmt.orelse else set(result)
        if isinstance(stmt, ast.Try):
            body_env = self.exec_block(stmt.body, set(env))
            branches = [body_env]
            for handler in stmt.handlers:
                branches.append(self.exec_block(handler.body,
                                                set(env)))
            alive = [b for b in branches if b is not None]
            survivors = alive[0] if alive else None
            if survivors is not None:
                for branch in alive[1:]:
                    survivors = survivors & branch
            final_base = survivors if survivors is not None \
                else set(env)
            return self.exec_block(stmt.finalbody, set(final_base))
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_calls(item.context_expr, env)
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, (ast.Expr, ast.Assert)):
            value = stmt.value if isinstance(stmt, ast.Expr) \
                else stmt.test
            self._scan_calls(value, env)
            return env
        return env


def _function_env(node: ast.AST) -> Set[str]:
    env: Set[str] = set()
    arguments = node.args  # type: ignore[attr-defined]
    for arg in (arguments.posonlyargs + arguments.args
                + arguments.kwonlyargs):
        if _name_is_seedy(arg.arg):
            env.add(arg.arg)
    return env


def analyze_rng(contexts: Sequence[FileContext],
                config: LintConfig) -> List[Finding]:
    """Run the RNG provenance analysis over every parsed file."""
    findings: List[Finding] = []
    for ctx in contexts:
        scope = _TaintScope(ctx, findings)
        module_body = [stmt for stmt in ctx.tree.body
                       if not isinstance(stmt, (ast.FunctionDef,
                                                ast.AsyncFunctionDef,
                                                ast.ClassDef))]
        scope.exec_block(module_body, set())
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                scope.exec_block(node.body, _function_env(node))
            elif isinstance(node, ast.Lambda):
                scope._scan_calls(node.body, set())
    return findings


CODES = ("RNG001", "RNG002")

__all__ = ["CODES", "analyze_rng"]
