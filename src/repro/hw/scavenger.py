"""Energy-scavenging (harvesting) source models.

The paper's opening motivation: BANs operate "on very limited
resources, such as batteries or energy scavengers" (Section 1, citing
Heliomote-style solar harvesting and the scavenging survey [8]).  A
harvester changes the design question from *how long until empty* to
*is the node energy-neutral*: does average harvested power cover
average consumed power?

These models produce harvest power as a pure function of time (same
reproducibility contract as signal sources); :class:`HarvestingBudget`
combines one with a node's measured consumption into the neutrality
verdict and the sustainable duty-cycle headroom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.report import NodeEnergyResult


class HarvestSource:
    """Interface: instantaneous harvested power at a given time."""

    def power_at(self, t_seconds: float) -> float:
        """Harvested power in watts at ``t_seconds``."""
        raise NotImplementedError

    def energy_between(self, t0_s: float, t1_s: float,
                       resolution_s: float = 1.0) -> float:
        """Harvested energy over [t0, t1] in joules (midpoint rule)."""
        if t1_s < t0_s:
            raise ValueError(f"bad interval [{t0_s}, {t1_s}]")
        steps = max(1, int(math.ceil((t1_s - t0_s) / resolution_s)))
        width = (t1_s - t0_s) / steps
        return sum(self.power_at(t0_s + (k + 0.5) * width) * width
                   for k in range(steps))


@dataclass(frozen=True)
class ConstantHarvest(HarvestSource):
    """A steady source (thermoelectric on skin: tens of microwatts to a
    few milliwatts depending on gradient and area)."""

    power_w: float

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ValueError(f"power must be >= 0: {self.power_w}")

    def power_at(self, t_seconds: float) -> float:
        return self.power_w


@dataclass(frozen=True)
class DiurnalSolarHarvest(HarvestSource):
    """Indoor/outdoor light on a wearable cell, as a day/night cycle.

    Power follows a clipped sinusoid: zero at night, peaking at
    ``peak_power_w`` at midday.

    Attributes:
        peak_power_w: harvest at solar noon.
        day_fraction: fraction of the 24 h period with any light.
        period_s: cycle length (86400 s; shorter in tests).
        phase_s: time of sunrise within the cycle.
    """

    peak_power_w: float
    day_fraction: float = 0.5
    period_s: float = 86_400.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_power_w < 0:
            raise ValueError(f"peak power must be >= 0: "
                             f"{self.peak_power_w}")
        if not 0.0 < self.day_fraction <= 1.0:
            raise ValueError(
                f"day_fraction out of (0, 1]: {self.day_fraction}")
        if self.period_s <= 0:
            raise ValueError(f"period must be positive: {self.period_s}")

    def power_at(self, t_seconds: float) -> float:
        day_length = self.day_fraction * self.period_s
        into_cycle = (t_seconds - self.phase_s) % self.period_s
        if into_cycle >= day_length:
            return 0.0
        return self.peak_power_w * math.sin(
            math.pi * into_cycle / day_length)


@dataclass(frozen=True)
class MotionHarvest(HarvestSource):
    """Kinetic harvesting from body motion: a baseline (resting
    micro-movements) plus bursts while the wearer is active.

    Activity is modelled as a deterministic on/off schedule with period
    ``activity_period_s`` and duty ``activity_fraction``.
    """

    active_power_w: float
    rest_power_w: float = 0.0
    activity_period_s: float = 3_600.0
    activity_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.active_power_w < 0 or self.rest_power_w < 0:
            raise ValueError("powers must be >= 0")
        if not 0.0 <= self.activity_fraction <= 1.0:
            raise ValueError(
                f"activity_fraction out of [0,1]: "
                f"{self.activity_fraction}")

    def power_at(self, t_seconds: float) -> float:
        into_cycle = t_seconds % self.activity_period_s
        if into_cycle < self.activity_fraction * self.activity_period_s:
            return self.active_power_w
        return self.rest_power_w


@dataclass(frozen=True)
class HarvestingBudget:
    """Energy-neutrality verdict for one node on one harvester."""

    node_id: str
    consumed_mw: float
    harvested_mw: float

    @property
    def is_energy_neutral(self) -> bool:
        """Whether harvest covers consumption on average."""
        return self.harvested_mw >= self.consumed_mw

    @property
    def margin_mw(self) -> float:
        """Surplus (positive) or deficit (negative) in milliwatts."""
        return self.harvested_mw - self.consumed_mw

    @property
    def coverage(self) -> float:
        """Fraction of consumption covered by harvest."""
        if self.consumed_mw <= 0:
            return float("inf")
        return self.harvested_mw / self.consumed_mw

    def render(self) -> str:
        """One-line verdict."""
        verdict = "energy-neutral" if self.is_energy_neutral \
            else "net-negative"
        return (f"{self.node_id}: consumes {self.consumed_mw:.2f} mW, "
                f"harvests {self.harvested_mw:.2f} mW "
                f"({100 * self.coverage:.0f}% coverage, {verdict})")


def harvesting_budget(node: NodeEnergyResult, source: HarvestSource,
                      horizon_s: float = 86_400.0,
                      include_asic: bool = True) -> HarvestingBudget:
    """Judge energy neutrality: the node's measured average power vs the
    harvester's average over ``horizon_s`` (a full day by default)."""
    if node.horizon_s <= 0:
        raise ValueError("node result has a non-positive horizon")
    consumed_mj = node.total_with_asic_mj if include_asic \
        else node.total_mj
    consumed_mw = consumed_mj / node.horizon_s
    resolution = max(1.0, horizon_s / 10_000.0)
    harvested_mw = source.energy_between(0.0, horizon_s, resolution) \
        / horizon_s * 1e3
    return HarvestingBudget(node_id=node.node_id,
                            consumed_mw=consumed_mw,
                            harvested_mw=harvested_mw)


__all__ = [
    "HarvestSource",
    "ConstantHarvest",
    "DiurnalSolarHarvest",
    "MotionHarvest",
    "HarvestingBudget",
    "harvesting_budget",
]
