"""Experiment reproduction, validation metrics, sweeps and projections."""

from .experiments import (
    REPORTED_NODE,
    ExperimentResult,
    ExperimentRow,
    Figure4Result,
    TABLE_REPRODUCERS,
    reproduce_figure4,
    reproduce_table1,
    reproduce_table2,
    reproduce_table3,
    reproduce_table4,
)
from .closed_form import AnalyticEnergy, explain as explain_analytic, \
    predict as predict_analytic
from .compare import MetricDelta, compare_nodes, render_comparison
from .summary import full_report
from .export import experiment_records, network_records, to_csv, to_json
from .golden import GOLDENS, check_goldens, compute_goldens
from .qos import DesignPoint, LatencyStats, beat_report_latencies, \
    evaluate_rpeak_cycles, pareto_front, render_tradeoff
from .replication import Summary, default_metrics, node_metric, \
    replicate, traffic_metric
from .sensitivity import PARAMETERS as SENSITIVITY_PARAMETERS, \
    SensitivityEntry, render_tornado, tornado
from .figures import figure4_csv, figure4_series, render_figure4, \
    table_series
from .waveforms import StateChange, WaveformProbe
from .lifetime import LifetimeProjection, project_lifetime
from .sweep import (
    SweepPoint,
    as_table,
    sweep_cycle_ms,
    sweep_custom,
    sweep_heart_rate,
    sweep_num_nodes,
    sweep_scenarios,
)
from .validation import (
    OverallValidation,
    TableValidation,
    validate_all,
    validate_table,
)

__all__ = [
    "REPORTED_NODE",
    "ExperimentResult",
    "ExperimentRow",
    "Figure4Result",
    "TABLE_REPRODUCERS",
    "reproduce_figure4",
    "reproduce_table1",
    "reproduce_table2",
    "reproduce_table3",
    "reproduce_table4",
    "AnalyticEnergy",
    "MetricDelta",
    "compare_nodes",
    "render_comparison",
    "full_report",
    "explain_analytic",
    "predict_analytic",
    "experiment_records",
    "network_records",
    "to_csv",
    "to_json",
    "StateChange",
    "WaveformProbe",
    "GOLDENS",
    "DesignPoint",
    "LatencyStats",
    "beat_report_latencies",
    "evaluate_rpeak_cycles",
    "pareto_front",
    "render_tradeoff",
    "check_goldens",
    "compute_goldens",
    "Summary",
    "default_metrics",
    "node_metric",
    "replicate",
    "traffic_metric",
    "SENSITIVITY_PARAMETERS",
    "SensitivityEntry",
    "render_tornado",
    "tornado",
    "figure4_csv",
    "figure4_series",
    "render_figure4",
    "table_series",
    "LifetimeProjection",
    "project_lifetime",
    "SweepPoint",
    "as_table",
    "sweep_cycle_ms",
    "sweep_custom",
    "sweep_heart_rate",
    "sweep_num_nodes",
    "sweep_scenarios",
    "OverallValidation",
    "TableValidation",
    "validate_all",
    "validate_table",
]
