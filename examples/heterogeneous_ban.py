#!/usr/bin/env python3
"""The paper's "typical configuration" as a full system study.

Section 3 sketches the intended deployment: "a biopotential node on
each limb to monitor muscle activity, one on the chest to monitor
cardiac activity, and one on the head for brain activity."  This
example builds exactly that — six heterogeneous nodes on the Section-3
body topology — and walks the whole toolchain:

1. heterogeneous scenario (Rpeak chest node, 8-channel decimated EEG
   head node, streaming limb nodes);
2. per-node energy + loss taxonomy, exported as CSV;
3. power-state waveforms dumped as a VCD file;
4. energy-neutrality check against wearable harvesters.

Run:  python examples/heterogeneous_ban.py
"""

import os
import tempfile

from repro.analysis.export import network_records, to_csv
from repro.analysis.waveforms import WaveformProbe
from repro.core.report import render_table
from repro.hw.scavenger import (
    ConstantHarvest,
    DiurnalSolarHarvest,
    harvesting_budget,
)
from repro.net.scenario import BanScenario, BanScenarioConfig, NodeSpec
from repro.phy.topology import BodyTopology

MEASURE_S = 20.0

SPECS = [
    NodeSpec(app="rpeak", label="chest"),
    NodeSpec(app="eeg_streaming", channels=tuple(range(8)),
             transmit_channels=(0, 1, 2, 3), decimation=8, label="head"),
    NodeSpec(app="ecg_streaming", label="left_arm"),
    NodeSpec(app="ecg_streaming", label="right_arm"),
    NodeSpec(app="ecg_streaming", label="left_leg"),
    NodeSpec(app="ecg_streaming", label="right_leg"),
]


def main() -> None:
    config = BanScenarioConfig(
        mac="static",
        cycle_ms=70.0,            # 6 nodes + beacon slot => 10 ms slots
        node_specs=SPECS,
        measure_s=MEASURE_S,
        topology=BodyTopology.body_preset(range_m=2.0),
    )
    # BodyTopology uses position names; our node ids are node1..node6
    # plus base_station, so build an id->position preset instead.
    from repro.phy.topology import BODY_PRESET, Position
    positions = {"base_station": BODY_PRESET["base_station"]}
    for index, spec in enumerate(SPECS, start=1):
        positions[f"node{index}"] = BODY_PRESET[spec.label]
    config.topology = BodyTopology(positions, range_m=2.0)

    scenario = BanScenario(config)
    probe = WaveformProbe.attach_to_scenario(scenario)
    result = scenario.run()

    rows = []
    for index, spec in enumerate(SPECS, start=1):
        node = result.node(f"node{index}")
        rows.append((f"node{index}", spec.label, spec.app,
                     node.radio_mj, node.mcu_mj,
                     node.total_with_asic_mj / MEASURE_S))
    print(render_table(
        ["node", "position", "application", "radio (mJ)", "uC (mJ)",
         "avg power (mW)"],
        rows,
        title=f"Heterogeneous BAN over {MEASURE_S:.0f} s "
              "(static TDMA, 70 ms cycle)"))

    # --- Exports ------------------------------------------------------
    out_dir = tempfile.mkdtemp(prefix="repro_ban_")
    csv_path = os.path.join(out_dir, "nodes.csv")
    with open(csv_path, "w") as handle:
        handle.write(to_csv(network_records(result)))
    vcd_path = os.path.join(out_dir, "ban.vcd")
    probe.write_vcd(vcd_path)
    print(f"\nExports: {csv_path}")
    print(f"         {vcd_path} "
          f"({len(probe.signals)} power-state signals; open in GTKWave)")

    # --- Harvesting outlook --------------------------------------------
    print("\nEnergy-neutrality against wearable harvesters "
          "(radio+uC only — the 10.5 mW sensing ASIC is the real "
          "barrier):")
    harvesters = [
        ("thermoelectric patch (1.5 mW)", ConstantHarvest(1.5e-3)),
        ("indoor solar cell (5 mW peak)",
         DiurnalSolarHarvest(peak_power_w=5e-3, day_fraction=0.6)),
    ]
    chest = result.node("node1")
    for name, source in harvesters:
        budget = harvesting_budget(chest, source, include_asic=False)
        print(f"  {name}: {budget.render()}")


if __name__ == "__main__":
    main()
