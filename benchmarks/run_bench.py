#!/usr/bin/env python3
"""Standalone kernel-benchmark runner with a committed history.

Runs the same workloads as ``bench_kernel.py`` without requiring
pytest-benchmark, and appends one structured record per workload to
``BENCH_kernel.json`` at the repository root.  The committed file is the
performance trajectory of the simulator substrate: every optimisation PR
appends its before/after numbers so regressions are visible in review.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_bench.py --label my-change
    PYTHONPATH=src python benchmarks/run_bench.py --repeats 7 --full

``--full`` adds the (slower) whole-BAN simulation-rate workload on top
of the kernel event-throughput microbenchmark.

``--check-floor`` (implies ``--full``) turns the run into a perf gate:
it fails (exit 1) if the measured ``ban_simulation_rate_5s`` throughput
drops below the committed ``seed`` baseline scaled by
``--floor-fraction``.  CI passes a fraction < 1 because hosted runners
are slower and noisier than the reference container; locally, use the
default 1.0 to assert "no regression against seed".
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.net.scenario import BanScenario, BanScenarioConfig  # noqa: E402
from repro.sim.kernel import Simulator  # noqa: E402

#: Where the committed benchmark trajectory lives.
RESULTS_PATH = ROOT / "BENCH_kernel.json"

#: Events dispatched by the kernel-throughput workload.
KERNEL_EVENTS = 100_000


def kernel_event_throughput() -> int:
    """The ``bench_kernel.py::test_kernel_event_throughput`` workload:
    dispatch 100k self-rescheduling events through one Simulator."""
    sim = Simulator()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < KERNEL_EVENTS:
            sim.after(10, tick)

    sim.after(10, tick)
    sim.run_until(10 * KERNEL_EVENTS + 1)
    return count[0]


def kernel_metrics_overhead() -> int:
    """The throughput workload with a metrics registry *attached*.

    Paired with :func:`kernel_event_throughput` (registry detached),
    the two records quantify the observability layer's enabled-path
    cost; the disabled path is unchanged code.  Chunked ``run_until``
    calls exercise the per-call gauge/histogram writes.
    """
    from repro.obs import MetricsRegistry

    sim = Simulator()
    sim.metrics = MetricsRegistry()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < KERNEL_EVENTS:
            sim.after(10, tick)

    sim.after(10, tick)
    horizon = 10 * KERNEL_EVENTS + 1
    for end in range(horizon // 10, horizon + 1, horizon // 10):
        sim.run_until(end)
    sim.run_until(horizon)
    return count[0]


#: Scenario shared by the spans-overhead pair (small enough to keep the
#: default benchmark run fast, busy enough to exercise every hook).
_SPANS_CONFIG = dict(mac="static", app="ecg_streaming", num_nodes=3,
                     cycle_ms=30.0, sampling_hz=205.0, measure_s=2.0)


def ban_spans_baseline() -> int:
    """Spans-off partner of :func:`kernel_spans_overhead`: the same
    3-node 2 s BAN run with no tracer attached.  The disabled path is
    a per-hook ``is None`` test on unchanged code, so this doubles as
    the honest baseline the overhead figure is quoted against."""
    scenario = BanScenario(BanScenarioConfig(**_SPANS_CONFIG))
    scenario.run()
    return scenario.sim.events_dispatched


def kernel_spans_overhead() -> int:
    """The same BAN run with a causal span tracer attached.

    Paired with :func:`ban_spans_baseline`, the two records quantify
    the enabled-path cost of span tracing (cf. the ~1.4% metrics
    figure from the ``kernel_metrics_overhead`` pair); the span set
    itself is byte-identical across runs, so only wall time varies.
    """
    from repro.obs import attach_span_tracer

    scenario = BanScenario(BanScenarioConfig(**_SPANS_CONFIG))
    attach_span_tracer(scenario)
    scenario.run()
    return scenario.sim.events_dispatched


def ban_simulation_rate() -> int:
    """The densest table row (5 nodes, 30 ms cycle, 205 Hz streaming)
    over a short 5 s window; returns events dispatched."""
    config = BanScenarioConfig(mac="static", app="ecg_streaming",
                               num_nodes=5, cycle_ms=30.0,
                               sampling_hz=205.0, measure_s=5.0)
    scenario = BanScenario(config)
    scenario.run()
    return scenario.sim.events_dispatched


def ban_csma_rate() -> int:
    """The contention-MAC counterpart of :func:`ban_simulation_rate`:
    the same 5-node 205 Hz streaming load under CSMA/CA, so the perf
    gate also covers the backoff/CCA event machinery."""
    config = BanScenarioConfig(mac="csma", app="ecg_streaming",
                               num_nodes=5, cycle_ms=30.0,
                               sampling_hz=205.0, measure_s=5.0)
    scenario = BanScenario(config)
    scenario.run()
    return scenario.sim.events_dispatched


#: Benchmarks gated by ``--check-floor`` against their ``seed`` records.
FLOOR_GATED = ("ban_simulation_rate_5s", "ban_csma_rate_5s")


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure(workload: Callable[[], int], repeats: int) -> Dict[str, float]:
    """Run ``workload`` ``repeats`` times; report best/mean wall time."""
    times: List[float] = []
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        events = workload()
        times.append(time.perf_counter() - start)
    best = min(times)
    return {
        "best_s": round(best, 6),
        "mean_s": round(statistics.fmean(times), 6),
        "repeats": repeats,
        "events": events,
        "events_per_s": round(events / best, 1),
    }


def seed_baseline(benchmark: str) -> float:
    """The committed ``seed``-labelled events/s for ``benchmark``.

    Raises SystemExit if the history has no such record — a perf gate
    with no baseline should fail loudly, not silently pass.
    """
    history: List[Dict] = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    rates = [r["events_per_s"] for r in history
             if r.get("benchmark") == benchmark and r.get("label") == "seed"]
    if not rates:
        raise SystemExit(
            f"no 'seed' record for {benchmark} in {RESULTS_PATH}")
    return max(rates)


def append_record(record: Dict) -> None:
    """Append ``record`` to the committed JSON history (a list)."""
    history: List[Dict] = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    history.append(record)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per workload; best-of is recorded "
                             "(default 5)")
    parser.add_argument("--label", default="",
                        help="free-form tag stored with the record "
                             "(e.g. 'seed', 'fast-path')")
    parser.add_argument("--full", action="store_true",
                        help="also run the whole-BAN simulation-rate "
                             "workload (slower)")
    parser.add_argument("--dry-run", action="store_true",
                        help="print records without touching "
                             "BENCH_kernel.json")
    parser.add_argument("--check-floor", action="store_true",
                        help="fail if ban_simulation_rate_5s falls below "
                             "the committed seed baseline scaled by "
                             "--floor-fraction (implies --full)")
    parser.add_argument("--floor-fraction", type=float, default=1.0,
                        help="fraction of the seed baseline that is "
                             "still a pass (default 1.0; CI uses less "
                             "to absorb hosted-runner variance)")
    args = parser.parse_args(argv)
    if not 0.0 < args.floor_fraction <= 1.0:
        parser.error(f"--floor-fraction must be in (0, 1]:"
                     f" {args.floor_fraction}")

    workloads = [("kernel_event_throughput", kernel_event_throughput),
                 ("kernel_metrics_overhead", kernel_metrics_overhead),
                 ("ban_spans_baseline_2s", ban_spans_baseline),
                 ("kernel_spans_overhead", kernel_spans_overhead)]
    if args.full or args.check_floor:
        workloads.append(("ban_simulation_rate_5s", ban_simulation_rate))
        workloads.append(("ban_csma_rate_5s", ban_csma_rate))

    rev = _git_rev()
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    measured: Dict[str, float] = {}
    for name, workload in workloads:
        stats = measure(workload, args.repeats)
        measured[name] = stats["events_per_s"]
        record = {"benchmark": name, "timestamp_utc": stamp,
                  "git_rev": rev, "label": args.label,
                  "python": sys.version.split()[0], **stats}
        print(json.dumps(record))
        if not args.dry_run:
            append_record(record)
    if not args.dry_run:
        print(f"appended to {RESULTS_PATH}")
    if args.check_floor:
        failed = False
        for benchmark in FLOOR_GATED:
            baseline = seed_baseline(benchmark)
            floor = baseline * args.floor_fraction
            rate = measured[benchmark]
            verdict = "ok" if rate >= floor else "FAIL"
            print(f"floor check [{benchmark}]: {rate:,.1f} ev/s vs floor "
                  f"{floor:,.1f} ({args.floor_fraction:g} x seed "
                  f"{baseline:,.1f}): {verdict}")
            failed = failed or rate < floor
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
