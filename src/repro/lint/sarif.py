"""SARIF 2.1.0 export of a lint report.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard GitHub code scanning ingests: uploading ``lint.sarif`` from
the CI lint job makes every finding annotate the pull request at its
``path:line`` instead of living in a build log.

The document is one ``run`` of the ``repro.lint`` driver: the full
rule catalog (including the synthetic parse/suppression rules) goes
into ``tool.driver.rules`` so viewers can show titles and rationale,
and every finding becomes a ``result`` with a physical location.
Waived findings are exported too — as suppressed results (``kind:
"inSource"`` with the waiver reason as justification) — so code
scanning shows the waiver trail rather than silently dropping it,
mirroring how the text and JSON reporters keep suppressions visible.

Like :func:`repro.lint.report.render_json`, serialisation is stable
(sorted keys, trailing newline) so repeat runs are byte-identical.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .engine import (PARSE_RULE, STALE_RULE, SUPPRESSION_RULE, Finding,
                     LintReport)
from .rules import iter_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Rules that exist only as engine plumbing, not catalog entries.
_SYNTHETIC_RULES: Tuple[Tuple[str, str, str], ...] = (
    (PARSE_RULE, "file parses",
     "A file that does not parse cannot be verified at all; every "
     "other guarantee is vacuous until it does."),
    (SUPPRESSION_RULE, "well-formed waivers",
     "A malformed '# lint: allow(...)' comment suppresses nothing; "
     "the waiver the author thought they had does not exist."),
)


def _rule_catalog() -> List[Tuple[str, str, str]]:
    """``(code, title, rationale)`` for every exportable rule."""
    catalog: List[Tuple[str, str, str]] = [
        (rule.code, rule.title, rule.rationale)
        for rule in iter_rules()]
    known = {code for code, _, _ in catalog}
    for code, title, rationale in _SYNTHETIC_RULES:
        if code not in known:
            catalog.append((code, title, rationale))
    catalog.sort(key=lambda item: item[0])
    return catalog


def _level(finding: Finding) -> str:
    """SARIF severity: everything gates CI, so findings are errors."""
    if finding.rule == STALE_RULE:
        return "warning"  # housekeeping: a waiver outlived its finding
    return "error"


def _result(finding: Finding,
            rule_index: Dict[str, int]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _level(finding),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": max(1, finding.line),
                    "startColumn": max(1, finding.col),
                },
            },
        }],
    }
    index = rule_index.get(finding.rule)
    if index is not None:
        result["ruleIndex"] = index
    if finding.suppressed:
        result["suppressions"] = [{
            "kind": "inSource",
            "justification": finding.reason or "",
        }]
    return result


def report_to_sarif(report: LintReport) -> Dict[str, Any]:
    """The report as a SARIF 2.1.0 document (plain dict)."""
    catalog = _rule_catalog()
    rule_index = {code: i for i, (code, _, _) in enumerate(catalog)}
    rules: List[Dict[str, Any]] = [{
        "id": code,
        "shortDescription": {"text": title},
        "fullDescription": {"text": rationale},
        "defaultConfiguration": {
            "level": "warning" if code == STALE_RULE else "error",
        },
    } for code, title, rationale in catalog]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.lint",
                    "rules": rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": [_result(finding, rule_index)
                        for finding in report.findings],
        }],
    }


def render_sarif(report: LintReport) -> str:
    """Serialise to SARIF text (stable key order, trailing newline)."""
    return json.dumps(report_to_sarif(report), indent=2,
                      sort_keys=True) + "\n"


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif",
           "report_to_sarif"]
