#!/usr/bin/env python3
"""Dynamic determinism smoke: the invariant the static rules guard.

``repro.lint`` statically bans the things that *would* break bit-exact
reproducibility (global RNG, wall-clock reads, set-ordered dispatch);
this tool proves the invariant actually holds end to end.  Three
checks, each over a reference scenario set:

1. **Repeat-run** — the same config run twice in one process must
   produce an identical energy result *and* an identical event trace
   (every dispatched ``(tick, source, kind, detail)`` record).
2. **Parallel-equals-sequential** — a mixed batch executed with
   ``jobs=1`` and ``jobs=2`` must produce identical per-config result
   fingerprints in the same order.
3. **Merged counters** — the executor's merged telemetry counters and
   state timers (sim-time quantities; wall-clock histograms/gauges are
   explicitly out of scope) must be equal for ``jobs=1`` and
   ``jobs=2``.
4. **Causal spans** — attaching a span tracer must not perturb the
   run (result and trace fingerprints equal the spans-off run), the
   span set must be bit-identical across repeat runs, and the merged
   ``--jobs N`` span store must equal the sequential one.
5. **Static/runtime hook agreement** (``--static-obs``) — the
   interprocedural OBS pass (``repro.lint``) must be clean over
   ``src``, and the set of classes it audited as carrying ``spans``
   hook guards must agree with the classes the runtime
   ``attach_span_tracer`` actually wires: every audited-and-
   instantiated class receives the tracer, and every class that
   receives it is audited.  Together with check 4 this closes the
   loop — the perturbation test exercises exactly the hook surface
   the static pass proved effect-free.

Fingerprints are SHA-256 over the result cache's canonical dataclass
encoding (:func:`repro.exec.cache.config_fingerprint`), so "equal"
means equal to the last bit of every float.  A JSON artifact
(``--out``) records every fingerprint for offline diffing; the exit
code is non-zero on any divergence.

Usage::

    PYTHONPATH=src python tools/determinism_check.py --jobs 2 \
        --out determinism.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Any, Dict, List, Tuple

from repro.exec import ScenarioExecutor
from repro.exec.cache import config_fingerprint
from repro.net import BanScenario, BanScenarioConfig
from repro.obs import MetricsRegistry, SpanStore, attach_span_tracer
from repro.sim.trace import TraceRecorder


def reference_configs() -> List[BanScenarioConfig]:
    """A small batch covering distinct MACs, apps and seeds."""
    return [
        BanScenarioConfig(mac="static", app="ecg_streaming",
                          num_nodes=3, measure_s=2.0, seed=7),
        BanScenarioConfig(mac="dynamic", app="eeg_streaming",
                          num_nodes=2, measure_s=2.0, seed=11),
        BanScenarioConfig(mac="static", app="rpeak", num_nodes=2,
                          measure_s=2.0, seed=13,
                          clock_skew_ppm=40.0),
        BanScenarioConfig(mac="csma", app="ecg_streaming",
                          num_nodes=3, measure_s=2.0, seed=17,
                          sampling_hz=205.0),
    ]


def result_fingerprint(result: Any) -> str:
    """SHA-256 of the canonical (bit-exact) result encoding."""
    text = config_fingerprint(result)
    return hashlib.sha256(text.encode()).hexdigest()


def traced_run(config: BanScenarioConfig, spans: bool = False
               ) -> Tuple[str, str, str]:
    """Run once with tracing; return (result_fp, trace_fp, span_fp).

    ``span_fp`` is the span-store fingerprint when ``spans`` is set
    and ``""`` otherwise.
    """
    trace = TraceRecorder()
    scenario = BanScenario(config, trace=trace)
    tracer = attach_span_tracer(scenario) if spans else None
    result = scenario.run()
    digest = hashlib.sha256()
    for record in trace:
        digest.update(
            f"{record.time}|{record.source}|{record.kind}|"
            f"{record.detail}\n".encode())
    span_fp = tracer.store.fingerprint() if tracer is not None else ""
    return result_fingerprint(result), digest.hexdigest(), span_fp


def check_repeat_run(report: Dict[str, Any]) -> List[str]:
    """Check 1: same config, same process, twice — identical.

    Every reference config is exercised, so each MAC family (including
    the contention ones, whose backoff/jitter draws are the likeliest
    determinism hazard) proves repeatability separately.
    """
    failures = []
    entries = []
    for index, config in enumerate(reference_configs()):
        first = traced_run(config)
        second = traced_run(config)
        entries.append({
            "mac": config.mac,
            "result_fingerprints": [first[0], second[0]],
            "trace_fingerprints": [first[1], second[1]],
        })
        if first[0] != second[0]:
            failures.append(
                f"repeat-run energy results diverge "
                f"(config {index}, mac={config.mac})")
        if first[1] != second[1]:
            failures.append(
                f"repeat-run event traces diverge "
                f"(config {index}, mac={config.mac})")
    report["repeat_run"] = {"configs": entries}
    return failures


def check_jobs_equivalence(jobs: int, report: Dict[str, Any]
                           ) -> List[str]:
    """Checks 2+3: pooled results and merged counters == sequential."""
    failures = []
    configs = reference_configs()

    sequential_metrics = MetricsRegistry()
    sequential = ScenarioExecutor(
        jobs=1, metrics=sequential_metrics).run_configs(configs)
    pooled_metrics = MetricsRegistry()
    pooled = ScenarioExecutor(
        jobs=jobs, metrics=pooled_metrics).run_configs(configs)

    sequential_fps = [result_fingerprint(r) for r in sequential]
    pooled_fps = [result_fingerprint(r) for r in pooled]
    report["jobs_equivalence"] = {
        "jobs": jobs,
        "sequential": sequential_fps,
        "pooled": pooled_fps,
    }
    for index, (left, right) in enumerate(zip(sequential_fps,
                                              pooled_fps)):
        if left != right:
            failures.append(
                f"config {index}: jobs=1 and jobs={jobs} results "
                "diverge")

    # Sim-time telemetry must merge to equality; wall-clock figures
    # (histograms, gauges) legitimately differ run to run.
    deterministic_keys = ("counters", "state_timers")
    sequential_snapshot = sequential_metrics.snapshot()
    pooled_snapshot = pooled_metrics.snapshot()
    counters = {}
    for key in deterministic_keys:
        left, right = sequential_snapshot[key], pooled_snapshot[key]
        counters[key] = {"equal": left == right}
        if left != right:
            diff = {name for name in set(left) | set(right)
                    if left.get(name) != right.get(name)}
            counters[key]["diverging"] = sorted(diff)[:20]
            failures.append(
                f"merged {key} diverge between jobs=1 and "
                f"jobs={jobs}: {sorted(diff)[:5]}")
    report["merged_telemetry"] = counters
    return failures


def check_spans(jobs: int, report: Dict[str, Any]) -> List[str]:
    """Check 4: spans neither perturb nor vary (repeat + jobs merge).

    The perturbation check runs per reference config: the span hooks
    sit on different code paths per MAC family (TDMA slot machinery vs
    contention backoff/CCA phases), so one family passing proves
    nothing about the others.
    """
    failures = []
    configs = reference_configs()
    entries = []
    for index, config in enumerate(configs):
        base = traced_run(config)
        first = traced_run(config, spans=True)
        second = traced_run(config, spans=True)
        entries.append({
            "mac": config.mac,
            "result_fingerprints": [base[0], first[0], second[0]],
            "trace_fingerprints": [base[1], first[1], second[1]],
            "span_fingerprints": [first[2], second[2]],
        })
        where = f"(config {index}, mac={config.mac})"
        if (base[0], base[1]) != (first[0], first[1]):
            failures.append(
                "attaching spans perturbs the run (result or trace "
                f"fingerprint changed) {where}")
        if first[:2] != second[:2]:
            failures.append(f"spans-enabled repeat runs diverge {where}")
        if first[2] != second[2]:
            failures.append(f"repeat-run span sets diverge {where}")
    report["spans"] = {"configs": entries}
    merged: Dict[int, str] = {}
    for worker_count in (1, jobs):
        store = SpanStore()
        ScenarioExecutor(jobs=worker_count,
                         spans=store).run_configs(configs)
        merged[worker_count] = store.fingerprint()
    report["spans"]["jobs_span_fingerprints"] = {
        str(worker_count): fingerprint
        for worker_count, fingerprint in sorted(merged.items())}
    if merged[1] != merged[jobs]:
        failures.append(
            f"merged span sets diverge between jobs=1 and jobs={jobs}")
    return failures


def _runtime_object_graph(scenario: Any) -> List[Any]:
    """Every repro-package object reachable from ``scenario``."""
    seen: Dict[int, Any] = {}
    queue = [scenario]
    while queue:
        obj = queue.pop()
        if id(obj) in seen:
            continue
        module = type(obj).__module__ or ""
        if not module.startswith("repro."):
            if isinstance(obj, dict):
                queue.extend(obj.values())
            elif isinstance(obj, (list, tuple, set, frozenset)):
                queue.extend(obj)
            continue
        seen[id(obj)] = obj
        try:
            queue.extend(vars(obj).values())
        except TypeError:
            pass
    return list(seen.values())


def check_static_obs(report: Dict[str, Any]) -> List[str]:
    """Check 5: static OBS audit == runtime span-hook surface.

    Statically: lint ``src`` under the repository configuration and
    require zero unsuppressed OBS findings, collecting the classes the
    effect pass audited as guarding on ``spans``.  Dynamically: attach
    a tracer to every reference scenario and walk its object graph for
    the classes that actually received it.  The two sets must agree on
    the instantiated surface in both directions.
    """
    from pathlib import Path

    from repro.lint import lint_paths, load_config
    from repro.obs import attach_span_tracer as attach

    failures: List[str] = []
    src = Path(__file__).resolve().parent.parent / "src"
    config = load_config([src])
    lint_report = lint_paths([src], config)
    obs_findings = [f for f in lint_report.findings
                    if f.rule.startswith("OBS") and not f.suppressed]
    for finding in obs_findings:
        failures.append(
            f"static OBS pass not clean: {finding.rule} "
            f"{finding.path}:{finding.line}")
    hooks = lint_report.extras["effects"]["hooks"]
    static_guarded = {guard["class"] for guard in hooks["span_guards"]
                      if guard["attr"] == "spans" and guard["class"]}

    # The static audit anchors each guard at the class that *defines*
    # it; the runtime graph holds concrete subclasses.  Compare through
    # the MRO so ``CsmaBaseMac`` matches its guard on ``BaseStationMac``.
    instantiated: set = set()
    runtime_hooked: set = set()
    hooked_unaudited_set: set = set()
    for config_obj in reference_configs():
        scenario = BanScenario(config_obj)
        tracer = attach(scenario)
        for obj in _runtime_object_graph(scenario):
            mro = {cls.__name__ for cls in type(obj).__mro__}
            instantiated.update(mro)
            if getattr(obj, "spans", None) is tracer:
                runtime_hooked.update(mro & static_guarded)
                if not (mro & static_guarded):
                    hooked_unaudited_set.add(type(obj).__name__)

    audited_unreached = sorted(
        (static_guarded & instantiated) - runtime_hooked)
    hooked_unaudited = sorted(hooked_unaudited_set)
    report["static_obs"] = {
        "obs_findings": len(obs_findings),
        "static_guard_classes": sorted(static_guarded),
        "runtime_hooked_classes": sorted(runtime_hooked),
        "audited_but_not_attached": audited_unreached,
        "attached_but_not_audited": hooked_unaudited,
    }
    if audited_unreached:
        failures.append(
            "statically audited spans-guard classes never receive the "
            f"tracer at runtime: {audited_unreached} — the "
            "perturbation check is not exercising them")
    if hooked_unaudited:
        failures.append(
            "classes receive the span tracer but carry no statically "
            f"audited guard: {hooked_unaudited} — the static pass is "
            "not proving them effect-free")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="End-to-end determinism smoke "
                    "(static rules' dynamic counterpart).")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the pooled runs "
                             "(default: 2)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write fingerprint report JSON to PATH")
    parser.add_argument("--static-obs", action="store_true",
                        help="also cross-check the static OBS hook "
                             "audit against the runtime span "
                             "attachment surface (check 5)")
    args = parser.parse_args(argv)

    report: Dict[str, Any] = {"tool": "determinism_check",
                              "checks": {}}
    failures = []
    failures += check_repeat_run(report["checks"])
    failures += check_jobs_equivalence(args.jobs, report["checks"])
    failures += check_spans(args.jobs, report["checks"])
    if args.static_obs:
        failures += check_static_obs(report["checks"])
    report["ok"] = not failures
    report["failures"] = failures

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if failures:
        for failure in failures:
            print(f"DETERMINISM BROKEN: {failure}", file=sys.stderr)
        return 1
    suffix = (" and static/runtime hook audit agrees"
              if args.static_obs else "")
    print("determinism ok: repeat-run, jobs equivalence, merged "
          f"telemetry and causal spans all bit-identical{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
