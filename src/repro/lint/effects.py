"""Interprocedural effect inference and the OBS observability rules.

The platform's headline observability guarantee — spans/metrics/trace
hooks on ≡ off, byte-identical — is enforced dynamically by
``tools/determinism_check.py`` check 4.  This pass is its static form:
it computes, for every function in the tree, a fixed-point *effect
set* over the lattice

    {advances-time, draws-rng, io, mutates-ledger,
     mutates-sim-state, schedules-event}

and then proves that no code path reachable from an observability hook
carries a simulation-state effect.  ``io`` is tracked but *allowed* in
hooks (writing a JSONL trace perturbs nothing the kernel can see); the
other five are forbidden.

Effect seeding
--------------
* **Kernel/ledger intrinsics** — ``Simulator.at/after/every/call_soon``
  seed ``schedules-event``; ``Simulator.run_until/run_all`` seed
  ``advances-time``; ``PowerStateLedger.transition/retag/...`` and the
  accountants' ``book*`` methods seed ``mutates-ledger``.
* **Mutations** — attribute stores, subscript stores, ``del``, and
  mutating container-method calls (``append``, ``add``, ``update``...)
  seed ``mutates-sim-state`` *unless* the mutated object is
  observability state: an instance of a class defined in an
  observability module (``obs/``, ``sim/trace.py`` — configurable), or
  a fresh object the function itself just constructed.  Mutating a
  module global (the PR 4 counter-bug shape) always counts.
* **RNG draws** — draw-method calls (``random``, ``uniform``,
  ``gauss``, ...) on rng-ish receivers seed ``draws-rng``.
* **io** — ``open``/``print``, ``os.*``/``sys.*`` calls and
  file-object ``write``/``flush`` seed ``io``.

Effects propagate caller-ward over the
:class:`~repro.lint.callgraph.CallGraph` to a fixed point.  Where
inference is too conservative, a function may be pinned with a
``# effect: pure`` comment on (or directly above) its ``def`` line:
the pin replaces inference for that function — and like every waiver
it is a reviewable, greppable declaration at the point of use.

Rules
-----
* **OBS001** — a statement *directly inside* a spans/metrics/trace
  hook guard (``if self.spans is not None:``) has a forbidden effect
  of its own.  Anything that only happens when observability is
  attached must not touch simulation state.
* **OBS002** — a call inside a hook guard *reaches* (transitively,
  through the call graph) a function with a forbidden effect.  The
  finding names the witness path.
* **OBS003** — a pull-based metrics hook (an ``observe_metrics``
  implementation) has a forbidden effect, directly or transitively.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, CallSite, FunctionNode, build_call_graph
from .config import LintConfig
from .dataflow import comment_tokens
from .engine import FileContext, Finding

CODES = ("OBS001", "OBS002", "OBS003")

#: The full effect lattice (alphabetical; serialised in this order).
EFFECTS = ("advances-time", "draws-rng", "io", "mutates-ledger",
           "mutates-sim-state", "schedules-event")

#: Effects a hook-reachable function must not have.  ``io`` is allowed:
#: exporting a span to a sink perturbs nothing the simulation can see.
FORBIDDEN_IN_HOOKS = frozenset(EFFECTS) - {"io"}

#: Container/collection methods that mutate their receiver.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "reverse",
    "setdefault", "sort", "update",
})

#: ``random.Random`` / numpy Generator draw methods.
DRAW_METHODS = frozenset({
    "betavariate", "binomial", "choice", "choices", "expovariate",
    "gammavariate", "gauss", "getrandbits", "integers",
    "lognormvariate", "normal", "normalvariate", "paretovariate",
    "poisson", "randint", "random", "randrange", "sample", "shuffle",
    "standard_normal", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: Receiver-name fragments marking an object as an RNG.
_RNGISH_TOKENS = ("rng", "random", "stream")

#: Unresolved method names that evidently write to a file-like object.
_IO_METHODS = frozenset({"write", "writelines", "flush"})

#: Builtin / stdlib callables that perform io.
_IO_CALLS = frozenset({"open", "print", "input"})
_IO_MODULE_PREFIXES = ("os.", "sys.", "shutil.", "subprocess.",
                       "json.dump", "pickle.dump")

#: Intrinsic effect seeds for kernel/ledger primitives, keyed by
#: ``(class name, method name)``.  Inference would find most of these
#: from the bodies; seeding makes the contract explicit and robust to
#: refactors of the primitives themselves.
_INTRINSIC_EFFECTS: Dict[Tuple[str, str], FrozenSet[str]] = {
    ("Simulator", "at"): frozenset({"schedules-event"}),
    ("Simulator", "after"): frozenset({"schedules-event"}),
    ("Simulator", "every"): frozenset({"schedules-event"}),
    ("Simulator", "call_soon"): frozenset({"schedules-event"}),
    ("Simulator", "add_end_hook"): frozenset({"schedules-event"}),
    ("Simulator", "run_until"): frozenset({"advances-time"}),
    ("Simulator", "run_all"): frozenset({"advances-time"}),
    ("Simulator", "next_serial"): frozenset({"mutates-sim-state"}),
    ("TaskScheduler", "post"): frozenset({"schedules-event"}),
    ("PowerStateLedger", "transition"): frozenset({"mutates-ledger"}),
    ("PowerStateLedger", "retag"): frozenset({"mutates-ledger"}),
    ("PowerStateLedger", "close"): frozenset({"mutates-ledger"}),
    ("PowerStateLedger", "reset"): frozenset({"mutates-ledger"}),
}

#: Method-name seeds applied when the receiver could not be resolved
#: (belt and braces under inference failure).
_UNRESOLVED_SCHEDULING = frozenset({"at", "after", "every", "call_soon"})
_UNRESOLVED_LEDGER = frozenset({"transition", "retag"})


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_obs_module(module_path: str, obs_modules: Sequence[str]) -> bool:
    return any(module_path.startswith(entry) or module_path == entry
               or module_path.endswith(entry) for entry in obs_modules)


def _mutated_object(target: ast.AST) -> Optional[ast.AST]:
    """The object a store target mutates.

    ``a.b = v`` mutates ``a``; ``a.b[k] = v`` mutates the container
    ``a.b``; a plain-name target rebinds a local (no mutation).
    """
    if isinstance(target, ast.Attribute):
        return target.value
    if isinstance(target, ast.Subscript):
        inner = target.value
        while isinstance(inner, ast.Subscript):
            inner = inner.value
        return inner
    return None


class EffectAnalysis:
    """Whole-tree effect inference over a built call graph."""

    def __init__(self, graph: CallGraph, config: LintConfig) -> None:
        self.graph = graph
        self.config = config
        self.obs_modules = config.effects_obs_modules
        #: Names of classes defined in observability modules.
        self.obs_classes: Set[str] = {
            name for name, infos in graph.classes.items()
            if any(_is_obs_module(info.module_path, self.obs_modules)
                   for info in infos)}
        #: Names of simulation-side classes (defined outside obs).
        self.sim_classes: Set[str] = {
            name for name, infos in graph.classes.items()
            if any(not _is_obs_module(info.module_path, self.obs_modules)
                   for info in infos)}
        #: Functions pinned pure with ``# effect: pure``.
        self.pure_pins: Set[str] = set()
        #: Direct (intrinsic + body-local) effects per function.
        self.direct: Dict[str, FrozenSet[str]] = {}
        #: Fixed-point (transitive) effects per function.
        self.effects: Dict[str, FrozenSet[str]] = {}
        self._pin_cache: Dict[str, Dict[int, str]] = {}
        self._compute()

    # -- pure pins ------------------------------------------------------

    def _is_pinned_pure(self, function: FunctionNode) -> bool:
        ctx = function.ctx
        comments = self._pin_cache.get(ctx.path)
        if comments is None:
            comments = {
                line: text
                for line, text in comment_tokens(ctx.lines).items()
                if text.lstrip("# ").replace(" ", "")
                .startswith("effect:pure")}
            self._pin_cache[ctx.path] = comments
        lineno = function.lineno
        decorators = getattr(function.node, "decorator_list", ())
        first = min([lineno] + [d.lineno for d in decorators])
        return lineno in comments or (first - 1) in comments \
            or (lineno - 1) in comments

    # -- direct effects -------------------------------------------------

    def _compute(self) -> None:
        for qualname, function in self.graph.functions.items():
            if self._is_pinned_pure(function):
                self.pure_pins.add(qualname)
                self.direct[qualname] = frozenset()
                continue
            self.direct[qualname] = self._direct_effects(function)
        # Fixed point: effects(f) = direct(f) | U effects(callee).
        self.effects = {name: set(effects)  # type: ignore[misc]
                        for name, effects in self.direct.items()}
        changed = True
        while changed:
            changed = False
            for qualname in self.graph.functions:
                if qualname in self.pure_pins:
                    continue
                current = self.effects[qualname]
                before = len(current)
                for site in self.graph.calls.get(qualname, ()):
                    for target in site.targets:
                        current |= self.effects.get(target, set())
                if len(current) != before:
                    changed = True
        self.effects = {name: frozenset(effects)
                        for name, effects in self.effects.items()}

    def direct_statement_effects(self, function: FunctionNode,
                                 stmts: Sequence[ast.stmt]
                                 ) -> List[Tuple[ast.AST, str, str]]:
        """Direct effects of a statement list, with locations.

        Returns ``(node, effect, description)`` triples — the machinery
        behind both whole-function seeding and the OBS001 in-guard
        check.
        """
        found: List[Tuple[ast.AST, str, str]] = []
        fresh = self._fresh_locals(function)
        rngish = self._rngish_locals(function)
        env = self.graph._local_env(function)
        in_obs = _is_obs_module(function.module_path, self.obs_modules)
        targets_by_call = {
            id(site.call): site.targets
            for site in self.graph.calls.get(function.qualname, ())}

        def classify_mutation(target: ast.AST) -> Optional[str]:
            """None when benign, else a description of the mutation."""
            # Unwrap subscripts: ``a.b[k]`` mutates ``a.b``.
            while isinstance(target, ast.Subscript):
                target = target.value
            types = self.graph._expr_types(target, env)
            if types:
                if all(t in self.obs_classes
                       and t not in self.sim_classes for t in types):
                    return None  # observability state
                if any(t in self.sim_classes for t in types):
                    return _dotted(target) or "object"
            if isinstance(target, ast.Call):
                root = target.func
                if isinstance(root, ast.Attribute):
                    return classify_mutation(root.value)
                return None  # fresh call result
            if isinstance(target, ast.Attribute):
                return classify_mutation(target.value)
            if isinstance(target, ast.Name):
                if target.id == "self":
                    return None if in_obs else "self"
                if target.id in fresh:
                    return None
                if target.id in env and all(
                        t in self.obs_classes for t in env[target.id]):
                    return None
                if in_obs:
                    return None  # obs-local plumbing
                return target.id
            return None if in_obs else (_dotted(target) or "object")

        module_globals = self._module_global_targets(function)

        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.Lambda)) and node is not stmt:
                    continue
                if isinstance(node, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign)):
                    targets = node.targets \
                        if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Name):
                            if target.id in module_globals:
                                found.append((
                                    node, "mutates-sim-state",
                                    f"assignment to module global "
                                    f"{target.id!r}"))
                            continue
                        obj = _mutated_object(target)
                        if obj is not None:
                            what = classify_mutation(obj)
                            if what is not None:
                                found.append((
                                    node, "mutates-sim-state",
                                    f"mutation of {what!r}"))
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        obj = _mutated_object(target)
                        if obj is not None:
                            what = classify_mutation(obj)
                            if what is not None:
                                found.append((
                                    node, "mutates-sim-state",
                                    f"del on {what!r}"))
                elif isinstance(node, ast.Call):
                    found.extend(self._call_effects(
                        node, targets_by_call, rngish, classify_mutation))
        return found

    def _call_effects(self, call: ast.Call,
                      targets_by_call: Dict[int, Tuple[str, ...]],
                      rngish: Set[str],
                      classify_mutation) -> List[Tuple[ast.AST, str, str]]:
        found: List[Tuple[ast.AST, str, str]] = []
        name = _dotted(call.func) or ""
        tail = name.split(".")[-1]
        receiver_text = ""
        receiver_node: Optional[ast.AST] = None
        if isinstance(call.func, ast.Attribute):
            receiver_node = call.func.value
            receiver_text = (_dotted(receiver_node) or "").lower()
        resolved = bool(targets_by_call.get(id(call)))
        # io ------------------------------------------------------------
        if tail in _IO_CALLS and "." not in name:
            found.append((call, "io", f"{tail}() performs io"))
        elif any(name.startswith(prefix)
                 for prefix in _IO_MODULE_PREFIXES):
            found.append((call, "io", f"{name}() performs io"))
        elif tail in _IO_METHODS and not resolved:
            found.append((call, "io", f".{tail}() on a file-like "
                          "object performs io"))
        # object.__setattr__(x, ...) — frozen-dataclass mutation.
        if name == "object.__setattr__" and call.args:
            what = classify_mutation(call.args[0])
            if what is not None:
                found.append((call, "mutates-sim-state",
                              f"object.__setattr__ on {what!r}"))
        # RNG draws ------------------------------------------------------
        if tail in DRAW_METHODS and receiver_node is not None:
            leaves = receiver_text.replace(".", " ").split()
            rng_receiver = any(
                any(token in leaf for token in _RNGISH_TOKENS)
                for leaf in leaves)
            if not rng_receiver and isinstance(receiver_node, ast.Name):
                rng_receiver = receiver_node.id in rngish
            if rng_receiver:
                found.append((call, "draws-rng",
                              f"{name}() draws from an RNG stream"))
        # Unresolved kernel/ledger shapes --------------------------------
        if not resolved and receiver_node is not None:
            if tail in _UNRESOLVED_SCHEDULING and (
                    "sim" in receiver_text or "kernel" in receiver_text):
                found.append((call, "schedules-event",
                              f"{name}() schedules a kernel event"))
            elif tail == "post" and "scheduler" in receiver_text:
                found.append((call, "schedules-event",
                              f"{name}() posts a scheduler task"))
            elif tail in _UNRESOLVED_LEDGER:
                found.append((call, "mutates-ledger",
                              f"{name}() drives a power-state ledger"))
            elif tail in ("book", "book_collision_tx") and (
                    "accountant" in receiver_text
                    or "ledger" in receiver_text):
                found.append((call, "mutates-ledger",
                              f"{name}() books energy"))
        # Mutating container method on a non-fresh receiver --------------
        if tail in MUTATOR_METHODS and receiver_node is not None \
                and not resolved:
            what = classify_mutation(receiver_node)
            if what is not None:
                found.append((call, "mutates-sim-state",
                              f".{tail}() mutates {what!r}"))
        return found

    def _direct_effects(self, function: FunctionNode) -> FrozenSet[str]:
        effects: Set[str] = set()
        intrinsic = _INTRINSIC_EFFECTS.get(
            (function.class_name or "", function.name))
        if intrinsic:
            effects |= intrinsic
        body = function.node.body  # type: ignore[attr-defined]
        for _, effect, _ in self.direct_statement_effects(function, body):
            effects.add(effect)
        return frozenset(effects)

    # -- local classification helpers -----------------------------------

    def _fresh_locals(self, function: FunctionNode) -> Set[str]:
        """Locals only ever bound to objects this function creates."""
        fresh: Set[str] = set()
        stale: Set[str] = set()
        for node in ast.walk(function.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                if isinstance(node, ast.Assign):
                    targets = [t for t in node.targets
                               if isinstance(t, ast.Name)]
                else:
                    targets = [node.target] \
                        if isinstance(node.target, ast.Name) else []
                if not targets or node.value is None:
                    continue
                if self._is_fresh_expr(node.value):
                    for target in targets:
                        fresh.add(target.id)
                else:
                    for target in targets:
                        stale.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    stale.add(node.target.id)
        return fresh - stale

    def _is_fresh_expr(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp, ast.Constant,
                              ast.Tuple, ast.JoinedStr)):
            return True
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is None:
                return False
            tail = name.split(".")[-1]
            return (tail in ("list", "dict", "set", "tuple", "deque",
                             "defaultdict", "OrderedDict", "Counter",
                             "sorted", "bytearray")
                    or tail in self.graph.classes)
        return False

    def _rngish_locals(self, function: FunctionNode) -> Set[str]:
        """Locals aliasing an RNG (``r = self._backoff_stream``)."""
        rngish: Set[str] = set()
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Assign):
                continue
            source = _dotted(node.value)
            if source is None and isinstance(node.value, ast.Call):
                source = _dotted(node.value.func)
            if source is None:
                continue
            lowered = source.lower()
            if any(token in lowered for token in _RNGISH_TOKENS):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rngish.add(target.id)
        return rngish

    def _module_global_targets(self, function: FunctionNode) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(function.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                names.update(node.names)
        return names

    # -- queries ---------------------------------------------------------

    def effects_of(self, qualname: str) -> FrozenSet[str]:
        return self.effects.get(qualname, frozenset())

    def forbidden_effects_of(self, qualname: str) -> FrozenSet[str]:
        return self.effects_of(qualname) & FORBIDDEN_IN_HOOKS

    def witness_path(self, start: str) -> List[str]:
        """Shortest call path from ``start`` to a direct forbidden
        effect (BFS; ``start`` included)."""
        if self.direct.get(start, frozenset()) & FORBIDDEN_IN_HOOKS:
            return [start]
        seen = {start}
        frontier: List[List[str]] = [[start]]
        while frontier:
            path = frontier.pop(0)
            for site in self.graph.calls.get(path[-1], ()):
                for target in site.targets:
                    if target in seen:
                        continue
                    seen.add(target)
                    extended = path + [target]
                    if self.direct.get(target, frozenset()) \
                            & FORBIDDEN_IN_HOOKS:
                        return extended
                    if self.effects.get(target, frozenset()) \
                            & FORBIDDEN_IN_HOOKS:
                        frontier.append(extended)
        return [start]


# ----------------------------------------------------------------------
# Hook-guard detection
# ----------------------------------------------------------------------
def _guard_exprs(test: ast.AST) -> List[ast.AST]:
    """The ``X`` of every ``X is not None`` clause in an if-test."""
    found: List[ast.AST] = []
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            found.extend(_guard_exprs(value))
        return found
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.ops[0], ast.IsNot) \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        found.append(test.left)
    return found


def _hook_attr_name(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class HookAudit:
    """Detected hook guard sites and hook methods across the tree."""

    def __init__(self) -> None:
        #: ``(module_path, class name or "", lineno, attr name)``.
        self.span_guards: List[Tuple[str, str, int, str]] = []
        #: Qualnames of ``observe_metrics``-style hook methods.
        self.hook_methods: List[str] = []

    def guard_classes(self) -> Set[str]:
        """Class names carrying at least one hook guard site."""
        return {cls for _, cls, _, _ in self.span_guards if cls}

    def to_summary(self) -> Dict[str, object]:
        return {
            "span_guards": [
                {"module": module, "class": cls, "line": line,
                 "attr": attr}
                for module, cls, line, attr in sorted(self.span_guards)],
            "hook_methods": sorted(self.hook_methods),
        }


def analyze_effects(contexts: Sequence[FileContext],
                    config: LintConfig,
                    graph: Optional[CallGraph] = None,
                    ) -> Tuple[List[Finding], Dict[str, object]]:
    """Run effect inference + the OBS rules; return findings + extras."""
    if graph is None:
        graph = build_call_graph(contexts)
    analysis = EffectAnalysis(graph, config)
    audit = HookAudit()
    findings: List[Finding] = []
    hook_attrs = set(config.effects_hook_attrs)

    for qualname, function in graph.functions.items():
        ctx = function.ctx
        in_obs = _is_obs_module(function.module_path,
                                config.effects_obs_modules)
        # OBS003: pull-based metrics hooks must be sim-pure.
        if function.name in config.effects_hook_methods:
            audit.hook_methods.append(qualname)
            forbidden = analysis.forbidden_effects_of(qualname)
            if forbidden:
                path = analysis.witness_path(qualname)
                findings.append(ctx.finding_at(
                    "OBS003", function.lineno,
                    getattr(function.node, "col_offset", 0),
                    f"metrics hook {qualname} has effect(s) "
                    f"{{{', '.join(sorted(forbidden))}}} on simulation "
                    f"state (via {' -> '.join(path)}); pull-based "
                    f"hooks must only read"))
        # Span/trace guards.
        for node in ast.walk(function.node):
            if not isinstance(node, ast.If):
                continue
            hooked = None
            for expr in _guard_exprs(node.test):
                attr = _hook_attr_name(expr)
                if attr in hook_attrs:
                    hooked = attr
                    break
            if hooked is None:
                continue
            audit.span_guards.append((
                function.module_path, function.class_name or "",
                node.lineno, hooked))
            if in_obs:
                continue  # guards inside obs code guard obs state
            # OBS001: direct effects of the guarded statements.
            for offender, effect, description in \
                    analysis.direct_statement_effects(function, node.body):
                if effect not in FORBIDDEN_IN_HOOKS:
                    continue
                findings.append(ctx.finding_at(
                    "OBS001", offender.lineno,
                    getattr(offender, "col_offset", 0),
                    f"{description} inside the {hooked!r} hook guard: "
                    f"code conditional on observability being attached "
                    f"must not touch simulation state ({effect})"))
            # OBS002: transitive effects of guarded calls.
            guarded_calls = {
                id(sub) for stmt in node.body
                for sub in ast.walk(stmt) if isinstance(sub, ast.Call)}
            for site in graph.calls.get(qualname, ()):
                if id(site.call) not in guarded_calls:
                    continue
                for target in site.targets:
                    forbidden = analysis.forbidden_effects_of(target)
                    if not forbidden:
                        continue
                    path = analysis.witness_path(target)
                    findings.append(ctx.finding_at(
                        "OBS002", site.call.lineno,
                        site.call.col_offset,
                        f"call inside the {hooked!r} hook guard "
                        f"reaches {path[-1]} which has effect(s) "
                        f"{{{', '.join(sorted(forbidden))}}} "
                        f"(path: {' -> '.join(path)}); spans/metrics "
                        f"on must stay byte-identical to off"))
                    break  # one finding per call site

    effect_table = {
        qualname: sorted(effects)
        for qualname, effects in sorted(analysis.effects.items())
        if effects}
    extras: Dict[str, object] = {
        "call_graph": graph.to_summary(),
        "effects": {
            "lattice": list(EFFECTS),
            "forbidden_in_hooks": sorted(FORBIDDEN_IN_HOOKS),
            "functions": effect_table,
            "pure_pins": sorted(analysis.pure_pins),
            "hooks": audit.to_summary(),
        },
    }
    return findings, extras


def audit_hooks(contexts: Sequence[FileContext],
                config: LintConfig) -> Tuple[HookAudit, List[Finding]]:
    """The hook audit alone (for ``tools/determinism_check.py``).

    Returns the audit plus any OBS findings, so the cross-check can
    both compare hook sets and assert the static pass is clean.
    """
    findings, extras = analyze_effects(contexts, config)
    audit = HookAudit()
    hooks = extras["effects"]["hooks"]  # type: ignore[index]
    for entry in hooks["span_guards"]:  # type: ignore[index]
        audit.span_guards.append((entry["module"], entry["class"],
                                  entry["line"], entry["attr"]))
    audit.hook_methods = list(hooks["hook_methods"])  # type: ignore[index]
    return audit, findings


__all__ = [
    "CODES",
    "DRAW_METHODS",
    "EFFECTS",
    "EffectAnalysis",
    "FORBIDDEN_IN_HOOKS",
    "HookAudit",
    "MUTATOR_METHODS",
    "analyze_effects",
    "audit_hooks",
]
