"""Biosignal generation: synthetic ECG/EEG and source primitives."""

from .arrhythmia import IrregularEcg
from .ecg import PQRST, SyntheticEcg, Wave
from .eeg import DEFAULT_BANDS, Band, SyntheticEeg
from .sources import (
    ConstantSource,
    HashNoiseSource,
    MixSource,
    ScaledSource,
    SignalSource,
    SineSource,
)

__all__ = [
    "IrregularEcg",
    "PQRST",
    "SyntheticEcg",
    "Wave",
    "DEFAULT_BANDS",
    "Band",
    "SyntheticEeg",
    "ConstantSource",
    "HashNoiseSource",
    "MixSource",
    "ScaledSource",
    "SignalSource",
    "SineSource",
]
