"""Command-line interface: ``repro-ban`` (or ``python -m repro``).

Subcommands:

* ``table1`` .. ``table4`` — reproduce one validation table and print
  it next to the paper's Real/Sim columns;
* ``figure4`` — reproduce the streaming-vs-Rpeak comparison;
* ``validate`` — reproduce everything and print the error summary;
* ``run`` — run an arbitrary scenario and print the node's energy,
  loss-taxonomy breakdown and battery-lifetime projection; optional
  CSV/JSON/VCD exports;
* ``explain`` — the closed-form analytic derivation for a scenario;
* ``baseline`` — the model-fidelity ladder (airtime-only vs full);
* ``interference`` — two adjacent BANs on one channel;
* ``lint`` — the determinism & simulation-safety static analyser
  (delegates to :mod:`repro.lint`; see ``docs/static_analysis.md``).

Every subcommand accepts ``--jobs N`` (fan independent scenarios out
over N worker processes; output identical to sequential) and
``--cache`` / ``--cache-dir`` (memoize results on disk; see
``docs/performance.md``).  Commands that run a single scenario ignore
``--jobs``.  Batch resilience: ``--isolate-errors`` turns a failing
scenario into a structured ``ErrorResult`` instead of aborting the
batch, ``--scenario-timeout S`` bounds each pooled scenario's wall
clock, and ``--retries N`` re-dispatches work lost to worker-pool
crashes.  ``run`` additionally takes ``--faults SPEC`` (deterministic
fault injection; see ``docs/protocols.md``) and ``--recovery`` (MAC
degradation behaviour under faults).

Telemetry (see ``docs/observability.md``): ``--metrics PATH`` writes a
metrics snapshot (JSON, or Prometheus text when PATH ends in
``.prom``), ``--trace-jsonl PATH`` streams the event trace as JSON
lines (single-scenario commands), and ``--profile`` times event
callbacks and prints the hottest labels.  Causal spans (see
``docs/observability.md``): the ``spans`` subcommand runs a scenario
and prints the per-packet latency/energy attribution report, while
``--spans PATH`` / ``--spans-perfetto PATH`` export the span set as
JSON lines or Chrome/Perfetto ``trace_event`` JSON from any
simulating command.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.closed_form import explain as explain_analytic
from .analysis.experiments import (
    TABLE_REPRODUCERS,
    reproduce_all_tables,
    reproduce_figure4,
)
from .analysis.export import network_records, to_csv, to_json
from .analysis.figures import render_figure4
from .analysis.lifetime import project_lifetime
from .analysis.validation import validate_all
from .analysis.waveforms import WaveformProbe
from .baselines.naive import fidelity_ladder
from .core.report import render_loss_breakdown, render_table
from .exec import ResultCache, ScenarioExecutor
from .exec.cache import DEFAULT_CACHE_DIR
from .faults import parse_fault_spec
from .hw.battery import CR2477, LIPO_160
from .mac.recovery import RecoveryConfig
from .net.multi import MultiBanScenario
from .net.scenario import APPS, MACS, BanScenario, BanScenarioConfig, \
    run_scenario
from .obs import (
    JsonlTraceSink,
    MetricsRegistry,
    SimulationProfiler,
    SinkTraceRecorder,
    SpanStore,
    SpanTracer,
    attach_periodic_snapshots,
    attach_span_tracer,
    attribution_report,
    collect_cache_metrics,
    collect_scenario_metrics,
    collect_simulator_metrics,
    rollup_spans,
    write_perfetto,
    write_spans_jsonl,
)

#: Named batteries selectable from the command line.
BATTERIES = {"cr2477": CR2477, "lipo160": LIPO_160}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--measure-s", type=float, default=60.0,
                        help="measurement window in seconds (default 60)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master random seed (default 0)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent scenarios "
                             "(default 1 = in-process; 0 = CPU count)")
    parser.add_argument("--cache", action="store_true",
                        help="memoize scenario results on disk "
                             f"(in {DEFAULT_CACHE_DIR}/ unless "
                             "--cache-dir is given)")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="result-cache directory (implies --cache)")
    parser.add_argument("--isolate-errors", action="store_true",
                        help="a failing scenario yields an ErrorResult "
                             "record instead of aborting the batch")
    parser.add_argument("--scenario-timeout", type=float, default=None,
                        metavar="S",
                        help="per-scenario wall-clock limit in worker "
                             "processes (needs --jobs >= 2)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-dispatch scenarios lost to worker-pool "
                             "failures up to N times (default 0)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write a metrics snapshot (JSON, or "
                             "Prometheus text if PATH ends in .prom)")
    parser.add_argument("--trace-jsonl", metavar="PATH", default=None,
                        help="stream the event trace as JSON lines "
                             "(single-scenario commands)")
    parser.add_argument("--profile", action="store_true",
                        help="time event callbacks and print the "
                             "hottest labels")
    parser.add_argument("--metrics-period", type=float, default=5.0,
                        metavar="S",
                        help="sim-time period of trajectory snapshots "
                             "recorded with --metrics (default 5)")
    parser.add_argument("--spans", metavar="PATH", default=None,
                        help="export causal spans as JSON lines "
                             "(see docs/observability.md)")
    parser.add_argument("--spans-perfetto", metavar="PATH", default=None,
                        help="export causal spans as Chrome/Perfetto "
                             "trace_event JSON (open in ui.perfetto.dev)")


class _Observability:
    """One CLI invocation's telemetry wiring (flags -> obs objects).

    Centralises what every subcommand needs: a registry when
    ``--metrics`` is given, a profiler for ``--profile``, a JSONL sink
    for ``--trace-jsonl``, and a ``finish`` step that folds cache
    stats in, writes the outputs and prints the profile table.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.metrics_path = getattr(args, "metrics", None)
        self.trace_path = getattr(args, "trace_jsonl", None)
        self.period_s = getattr(args, "metrics_period", 5.0)
        self.registry = (MetricsRegistry()
                         if self.metrics_path else None)
        self.profiler = (SimulationProfiler()
                         if getattr(args, "profile", False) else None)
        self._sink: Optional[JsonlTraceSink] = None
        self.spans_path = getattr(args, "spans", None)
        self.perfetto_path = getattr(args, "spans_perfetto", None)
        want_spans = (self.spans_path is not None
                      or self.perfetto_path is not None
                      or getattr(args, "command", None) == "spans")
        self.span_store: Optional[SpanStore] = (SpanStore() if want_spans
                                                else None)

    def make_trace(self, trace_capacity: Optional[int] = None
                   ) -> Optional[SinkTraceRecorder]:
        """A sink-fanning recorder when ``--trace-jsonl`` is set."""
        if self.trace_path is None:
            return None
        self._sink = JsonlTraceSink(self.trace_path)
        return SinkTraceRecorder([self._sink],
                                 capacity=trace_capacity)

    def attach(self, sim, scenario=None) -> None:
        """Instrument one kernel that runs in this process."""
        if self.registry is not None:
            sim.metrics = self.registry
            if self.period_s > 0:
                attach_periodic_snapshots(sim, self.registry,
                                          scenario=scenario,
                                          period_s=self.period_s)
        if self.profiler is not None:
            sim.profiler = self.profiler

    def attach_spans(self, scenario,
                     tracer: Optional[SpanTracer] = None) -> SpanTracer:
        """Wire a span tracer through one in-process scenario.

        Feeds the shared :class:`SpanStore`; pass ``tracer`` to reuse
        one tracer across scenarios on a shared channel (multi-BAN).
        """
        if tracer is None:
            tracer = SpanTracer(self.span_store)
        return attach_span_tracer(scenario, tracer)

    def collect(self, scenario) -> None:
        """Pull a finished scenario's models into the registry."""
        if self.registry is None:
            return
        collect_scenario_metrics(scenario, self.registry)
        collect_simulator_metrics(scenario.sim, self.registry)

    def finish(self, executor: Optional[ScenarioExecutor] = None) -> None:
        """Write snapshot/trace outputs and print the profile table."""
        registry = self.registry
        if registry is not None and executor is not None \
                and executor.cache is not None:
            collect_cache_metrics(executor.cache, registry)
        if self.trace_path is not None and self._sink is None:
            print("note: --trace-jsonl applies to single-scenario "
                  "commands; ignored")
        if self._sink is not None:
            self._sink.close()
            print(f"wrote {self.trace_path} "
                  f"({self._sink.emitted} trace records)")
        if self.span_store is not None:
            if registry is not None:
                rollup_spans(self.span_store, registry)
            if self.spans_path is not None:
                count = write_spans_jsonl(self.span_store,
                                          self.spans_path)
                print(f"wrote {self.spans_path} ({count} spans)")
            if self.perfetto_path is not None:
                count = write_perfetto(self.span_store,
                                       self.perfetto_path)
                print(f"wrote {self.perfetto_path} "
                      f"({count} trace events)")
        if registry is not None:
            exported = (registry.to_prometheus()
                        if self.metrics_path.endswith(".prom")
                        else registry.to_json())
            with open(self.metrics_path, "w") as handle:
                handle.write(exported)
            print(f"wrote {self.metrics_path}")
        if self.profiler is not None:
            print()
            print(self.profiler.render_table())

    def close(self) -> None:
        """Flush the trace sink even when the command aborts mid-run.

        Idempotent: ``finish()`` already closed the sink on the happy
        path; this is the unwind-path backstop (``try/finally`` in the
        sink-opening commands) so an exception never loses exactly the
        trace records that would explain it.
        """
        if self._sink is not None:
            self._sink.close()

    def note_analytic(self) -> None:
        """Warn once when telemetry flags hit an analytic command."""
        if (self.metrics_path or self.trace_path
                or self.profiler is not None
                or self.span_store is not None):
            print("note: telemetry flags are ignored by analytic "
                  "commands (nothing is simulated)")


def _executor_from_args(args: argparse.Namespace,
                        obs: Optional[_Observability] = None
                        ) -> ScenarioExecutor:
    """Build the scenario executor the batch commands run through."""
    if args.jobs < 0:
        raise SystemExit(
            f"repro-ban: error: --jobs must be >= 0, got {args.jobs}")
    cache = None
    if args.cache or args.cache_dir is not None:
        cache = ResultCache(root=args.cache_dir)
    if args.retries < 0:
        raise SystemExit(
            f"repro-ban: error: --retries must be >= 0, got {args.retries}")
    jobs = None if args.jobs == 0 else args.jobs
    return ScenarioExecutor(
        jobs=jobs, cache=cache,
        metrics=obs.registry if obs is not None else None,
        profiler=obs.profiler if obs is not None else None,
        spans=obs.span_store if obs is not None else None,
        isolate_errors=args.isolate_errors,
        timeout_s=args.scenario_timeout,
        retries=args.retries)


def _print_cache_stats(executor: ScenarioExecutor,
                       obs: Optional[_Observability] = None) -> None:
    if executor.cache is None:
        return
    if obs is not None and obs.registry is not None:
        return  # folded into the metrics snapshot by obs.finish()
    print(f"\ncache: {executor.cache.stats} "
          f"(dir: {executor.cache.root})")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-ban",
        description="OS-based BAN sensor-node energy estimation "
                    "(reproduction of Rincon et al., DATE 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    for table_id in sorted(TABLE_REPRODUCERS):
        table_parser = sub.add_parser(
            table_id, help=f"reproduce the paper's {table_id}")
        _add_common(table_parser)

    figure_parser = sub.add_parser(
        "figure4", help="reproduce Figure 4 (streaming vs Rpeak)")
    _add_common(figure_parser)

    validate_parser = sub.add_parser(
        "validate", help="reproduce all tables and summarise errors")
    _add_common(validate_parser)

    def add_scenario_flags(target: argparse.ArgumentParser) -> None:
        target.add_argument("--mac", choices=MACS, default="static")
        target.add_argument("--app", choices=APPS,
                            default="ecg_streaming")
        target.add_argument("--nodes", type=int, default=5)
        target.add_argument("--cycle-ms", type=float, default=30.0,
                            help="static TDMA cycle length")
        target.add_argument("--slot-ms", type=float, default=10.0,
                            help="dynamic TDMA slot length")
        target.add_argument("--sampling-hz", type=float, default=None,
                            help="per-channel sampling rate "
                                 "(default: derived)")
        target.add_argument("--heart-rate", type=float, default=75.0)

    run_parser = sub.add_parser("run", help="run a custom BAN scenario")
    _add_common(run_parser)
    add_scenario_flags(run_parser)
    run_parser.add_argument("--join", action="store_true",
                            help="exercise the over-the-air join protocol")
    run_parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject a deterministic fault schedule, e.g. "
             "'crash,node=node1,at=5,reboot=3; "
             "beacons,node=node2,at=8,count=4' "
             "(kinds: crash, lockup, beacons, clockstep, brownout, "
             "random; see docs/protocols.md)")
    run_parser.add_argument(
        "--recovery", action="store_true",
        help="enable MAC degradation/recovery behaviour (widened "
             "beacon windows, duty-cycled reacquisition, SSR backoff) "
             "- typically combined with --faults")
    run_parser.add_argument("--battery", choices=sorted(BATTERIES),
                            default="cr2477")
    run_parser.add_argument("--losses", action="store_true",
                            help="print the loss-taxonomy breakdown")
    run_parser.add_argument("--csv", metavar="PATH", default=None,
                            help="export per-node records as CSV")
    run_parser.add_argument("--json", metavar="PATH", default=None,
                            help="export per-node records as JSON")
    run_parser.add_argument("--vcd", metavar="PATH", default=None,
                            help="dump power-state waveforms as VCD")

    spans_parser = sub.add_parser(
        "spans", help="causal span tracing: run a scenario and print "
                      "the per-packet latency/energy attribution "
                      "report")
    _add_common(spans_parser)
    add_scenario_flags(spans_parser)
    spans_parser.add_argument(
        "--join", action="store_true",
        help="exercise the over-the-air join protocol")

    explain_parser = sub.add_parser(
        "explain", help="closed-form analytic energy derivation")
    _add_common(explain_parser)
    add_scenario_flags(explain_parser)

    baseline_parser = sub.add_parser(
        "baseline", help="model-fidelity ladder for a scenario")
    _add_common(baseline_parser)
    add_scenario_flags(baseline_parser)

    interference_parser = sub.add_parser(
        "interference", help="two adjacent BANs on one channel")
    _add_common(interference_parser)
    interference_parser.add_argument(
        "--stagger-ms", type=float, default=7.5,
        help="offset between the BANs' beacon grids; 7.5 ms aligns "
             "ban2's slots onto ban1's for a worst-case demo")

    report_parser = sub.add_parser(
        "report", help="full reproduction report (tables + figure + "
                       "validation) to stdout or a file")
    _add_common(report_parser)
    report_parser.add_argument("--out", metavar="PATH", default=None,
                               help="write the report to a file")

    sensitivity_parser = sub.add_parser(
        "sensitivity", help="calibration tornado analysis")
    _add_common(sensitivity_parser)
    add_scenario_flags(sensitivity_parser)
    sensitivity_parser.add_argument(
        "--relative", type=float, default=0.10,
        help="perturbation applied to each parameter (default ±10%%)")
    sensitivity_parser.add_argument(
        "--quantity", choices=("total", "radio", "mcu"),
        default="total")
    sensitivity_parser.add_argument(
        "--method", choices=("analytic", "simulate"), default="analytic",
        help="analytic = instant closed form; simulate = one full "
             "discrete-event run per perturbation (use --jobs)")

    # Listed here for --help discoverability; ``main`` hands the raw
    # argument tail to repro.lint.cli before this tree ever parses it,
    # so the lint CLI keeps its own flags and exit codes.
    lint_parser = sub.add_parser(
        "lint", help="determinism & simulation-safety static analysis "
                     "(see docs/static_analysis.md)")
    lint_parser.add_argument("lint_args", nargs=argparse.REMAINDER,
                             help="arguments for repro.lint "
                                  "(try: repro-ban lint --help)")
    return parser


def _cmd_table(table_id: str, args: argparse.Namespace) -> int:
    obs = _Observability(args)
    executor = _executor_from_args(args, obs)
    result = TABLE_REPRODUCERS[table_id](measure_s=args.measure_s,
                                         seed=args.seed,
                                         executor=executor)
    print(result.render())
    _print_cache_stats(executor, obs)
    obs.finish(executor)
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    obs = _Observability(args)
    executor = _executor_from_args(args, obs)
    result = reproduce_figure4(measure_s=args.measure_s, seed=args.seed,
                               executor=executor)
    print(render_figure4(result))
    _print_cache_stats(executor, obs)
    obs.finish(executor)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    obs = _Observability(args)
    executor = _executor_from_args(args, obs)
    results = reproduce_all_tables(measure_s=args.measure_s,
                                   seed=args.seed, executor=executor)
    for table_id in sorted(results):
        print(results[table_id].render())
        print()
    print(validate_all(results).render())
    _print_cache_stats(executor, obs)
    obs.finish(executor)
    return 0


def _scenario_config(args: argparse.Namespace,
                     **extra) -> BanScenarioConfig:
    return BanScenarioConfig(
        mac=args.mac, app=args.app, num_nodes=args.nodes,
        cycle_ms=args.cycle_ms, slot_ms=args.slot_ms,
        sampling_hz=args.sampling_hz, heart_rate_bpm=args.heart_rate,
        measure_s=args.measure_s, seed=args.seed, **extra)


def _cmd_run(args: argparse.Namespace) -> int:
    obs = _Observability(args)
    extra = {}
    if args.faults:
        try:
            extra["faults"] = parse_fault_spec(args.faults)
        except ValueError as exc:
            raise SystemExit(f"repro-ban: error: --faults: {exc}")
    if args.recovery:
        extra["recovery"] = RecoveryConfig()
    config = _scenario_config(args, join_protocol=args.join, **extra)
    scenario = BanScenario(
        config, trace=obs.make_trace(config.trace_capacity))
    try:
        return _run_scenario_command(args, obs, scenario)
    finally:
        obs.close()


def _run_scenario_command(args: argparse.Namespace, obs: _Observability,
                          scenario: BanScenario) -> int:
    obs.attach(scenario.sim, scenario)
    if obs.span_store is not None:
        obs.attach_spans(scenario)
    probe = (WaveformProbe.attach_to_scenario(scenario)
             if args.vcd else None)
    result = scenario.run()
    obs.collect(scenario)
    headers = ["node", "radio (mJ)", "uC (mJ)", "ASIC (mJ)",
               "total (mJ)", "avg power (mW)"]
    rows = []
    for node_id in sorted(result.nodes):
        node = result.nodes[node_id]
        rows.append((node_id, node.radio_mj, node.mcu_mj, node.asic_mj,
                     node.total_with_asic_mj,
                     node.total_with_asic_mj / node.horizon_s))
    print(render_table(
        headers, rows,
        title=f"{args.app} over {args.mac} MAC, {args.nodes} nodes, "
              f"{args.measure_s:.0f} s"))
    battery = BATTERIES[args.battery]
    print()
    for node_id in sorted(result.nodes):
        projection = project_lifetime(result.nodes[node_id], battery)
        print(projection.render())
    if args.losses:
        print()
        for node_id in sorted(result.nodes):
            print(render_loss_breakdown(result.nodes[node_id]))
            print()
    if scenario.fault_injector is not None:
        print()
        summary = scenario.fault_injector.summary()
        if summary:
            print("injected faults:")
            for node_id, counts in summary.items():
                details = ", ".join(f"{name}={value}" for name, value
                                    in sorted(counts.items()))
                print(f"  {node_id}: {details}")
        else:
            print("injected faults: none fired within the horizon")
    records = network_records(result)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(to_csv(records))
        print(f"wrote {args.csv}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(to_json(records))
        print(f"wrote {args.json}")
    if probe is not None:
        probe.write_vcd(args.vcd)
        print(f"wrote {args.vcd} ({len(probe.signals)} signals)")
    obs.finish()
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    obs = _Observability(args)
    config = _scenario_config(args, join_protocol=args.join)
    scenario = BanScenario(
        config, trace=obs.make_trace(config.trace_capacity))
    try:
        obs.attach(scenario.sim, scenario)
        tracer = obs.attach_spans(scenario)
        scenario.run()
        obs.collect(scenario)
        print(attribution_report(tracer.store, scenario))
        obs.finish()
    finally:
        obs.close()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    _Observability(args).note_analytic()
    print(explain_analytic(_scenario_config(args)))
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    _Observability(args).note_analytic()
    config = _scenario_config(args)
    rows = [(estimate.fidelity.value, estimate.radio_mj,
             estimate.mcu_mj, estimate.total_mj)
            for estimate in fidelity_ladder(config)]
    print(render_table(
        ["fidelity", "radio (mJ)", "uC (mJ)", "total (mJ)"], rows,
        title=f"Model-fidelity ladder: {args.app} over {args.mac} MAC, "
              f"{args.measure_s:.0f} s"))
    print("\nL2 (guard windows) is the paper's model; the gap to L0 is "
          "the energy a duty-cycle estimate misses.")
    return 0


def _cmd_interference(args: argparse.Namespace) -> int:
    obs = _Observability(args)
    configs = [
        BanScenarioConfig(mac="static", app="ecg_streaming", num_nodes=3,
                          cycle_ms=30.0, sampling_hz=205.0,
                          measure_s=args.measure_s, seed=args.seed),
        BanScenarioConfig(mac="static", app="ecg_streaming", num_nodes=3,
                          cycle_ms=40.0, sampling_hz=150.0,
                          measure_s=args.measure_s, seed=args.seed),
    ]
    multi = MultiBanScenario(configs, stagger_ms=args.stagger_ms,
                             seed=args.seed, trace=obs.make_trace())
    try:
        obs.attach(multi.sim)
        if obs.span_store is not None:
            tracer = SpanTracer(obs.span_store)
            for ban in multi.bans:
                obs.attach_spans(ban, tracer)
        results = multi.run()
        if obs.registry is not None:
            for ban in multi.bans:
                collect_scenario_metrics(ban, obs.registry)
            collect_simulator_metrics(multi.sim, obs.registry)
        print(multi.interference_summary(results))
        print()
        rows = []
        for ban_name in sorted(results):
            for node_id in sorted(results[ban_name].nodes):
                node = results[ban_name].nodes[node_id]
                rows.append((node_id, node.radio_mj, node.mcu_mj,
                             node.traffic.overheard,
                             node.traffic.corrupted))
        print(render_table(
            ["node", "radio (mJ)", "uC (mJ)", "overheard", "corrupted"],
            rows, title="Per-node figures under co-channel interference"))
        obs.finish()
    finally:
        obs.close()
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .analysis.sensitivity import render_tornado, tornado
    obs = _Observability(args)
    executor = _executor_from_args(args, obs)
    entries = tornado(_scenario_config(args), relative=args.relative,
                      quantity=args.quantity, method=args.method,
                      executor=executor)
    print(f"Sensitivity of {args.quantity} energy "
          f"({args.app} over {args.mac} MAC, {args.measure_s:.0f} s) "
          f"to +/-{100 * args.relative:.0f}% parameter perturbations "
          f"[{args.method}]:\n")
    print(render_tornado(entries))
    _print_cache_stats(executor, obs)
    obs.finish(executor)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.summary import full_report
    obs = _Observability(args)
    executor = _executor_from_args(args, obs)
    text = full_report(measure_s=args.measure_s, seed=args.seed,
                       executor=executor)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    obs.finish(executor)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw and raw[0] == "lint":
        from .lint.cli import main as lint_main
        return lint_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.command in TABLE_REPRODUCERS:
        return _cmd_table(args.command, args)
    if args.command == "figure4":
        return _cmd_figure4(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "spans":
        return _cmd_spans(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "baseline":
        return _cmd_baseline(args)
    if args.command == "interference":
        return _cmd_interference(args)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
