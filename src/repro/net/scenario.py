"""BAN scenario builder and runner.

:class:`BanScenario` assembles a complete body-area network — base
station, N sensor nodes, channel, applications — from a declarative
:class:`BanScenarioConfig`, runs warm-up plus a steady-state measurement
window, and returns a :class:`~repro.core.report.NetworkEnergyResult`.

Measurement methodology (matching the paper's Section 5 setup):

* With ``join_protocol=False`` (default) nodes start with preassigned
  slots, as the paper's steady-state 60 s measurements do; warm-up is
  ``warmup_cycles`` TDMA cycles.
* With ``join_protocol=True`` nodes acquire, request slots, and get
  granted over the air; warm-up runs until every node is synced plus
  ``warmup_cycles`` cycles.
* The measurement window starts mid-sleep (one guard lead + 1 ms before
  a beacon) so no beacon-listen window is split, and lasts exactly
  ``measure_s`` seconds of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..apps.adaptive import AdaptiveCardiacApp
from ..apps.ecg_streaming import EcgStreamingApp, codes_per_payload
from ..apps.eeg_streaming import DEFAULT_EEG_SAMPLING_HZ, EegStreamingApp
from ..apps.rpeak import RPEAK_SAMPLING_HZ, RpeakApp
from ..core.calibration import DEFAULT_CALIBRATION, ModelCalibration
from ..core.report import NetworkEnergyResult
from ..faults import FaultInjector, FaultPlan
from ..mac.aloha import AlohaBaseMac, AlohaConfig, AlohaNodeMac
from ..mac.csma import CsmaBaseMac, CsmaConfig, CsmaNodeMac
from ..mac.recovery import RecoveryConfig
from ..mac.sync import SyncPolicy
from ..mac.tdma_dynamic import DynamicTdmaBaseMac, DynamicTdmaConfig, \
    DynamicTdmaNodeMac
from ..mac.tdma_static import StaticTdmaBaseMac, StaticTdmaConfig, \
    StaticTdmaNodeMac
from ..phy.channel import Channel
from ..phy.lossmodels import LossModel
from ..phy.topology import Topology
from ..signals.ecg import SyntheticEcg
from ..signals.eeg import SyntheticEeg
from ..signals.sources import HashNoiseSource, MixSource, ScaledSource
from ..sim.kernel import Simulator
from ..sim.simtime import milliseconds, seconds
from ..sim.trace import TraceRecorder
from .basestation import BaseStation
from .node import SensorNode

if TYPE_CHECKING:
    from ..apps.base import SamplingApplication
    from ..obs.spans import SpanTracer

#: Supported MAC identifiers.
MACS = ("static", "dynamic", "aloha", "csma")

#: Supported application identifiers.
APPS = ("ecg_streaming", "rpeak", "eeg_streaming", "adaptive")


@dataclass(frozen=True)
class NodeSpec:
    """Per-node configuration for heterogeneous BANs.

    A list of these in :attr:`BanScenarioConfig.node_specs` overrides
    the homogeneous ``app``/``sampling_hz`` settings, enabling the
    paper's "typical configuration" — limb/chest/head nodes running
    different applications in one network (Section 3).

    Attributes:
        app: one of :data:`APPS`.
        sampling_hz: per-channel rate (None = the app's derived default).
        channels: acquired ASIC channels.
        transmit_channels: EEG only — subset actually streamed.
        decimation: EEG only — block-average factor.
        payload_bytes: streaming payload size per cycle.
        label: optional human-readable role ("chest", "head", ...).
    """

    app: str = "ecg_streaming"
    sampling_hz: Optional[float] = None
    channels: Sequence[int] = (0, 1)
    transmit_channels: Optional[Sequence[int]] = None
    decimation: int = 4
    payload_bytes: int = 18
    label: str = ""

    def __post_init__(self) -> None:
        if self.app not in APPS:
            raise ValueError(
                f"app must be one of {APPS}, got {self.app!r}")
        if not self.channels:
            raise ValueError("a node needs at least one channel")


@dataclass
class BanScenarioConfig:
    """Declarative description of a BAN experiment.

    Attributes mirror the knobs the paper's evaluation turns: MAC
    variant, application, node count, cycle/slot length and sampling
    frequency; plus modelling switches (join protocol, sync policy,
    topology, loss model, crystal skew) for the extended studies.
    """

    mac: str = "static"
    app: str = "ecg_streaming"
    num_nodes: int = 5
    #: Static TDMA cycle length [ms].
    cycle_ms: float = 30.0
    #: Static TDMA slot capacity (default: num_nodes).
    num_slots: Optional[int] = None
    #: Dynamic TDMA slot length [ms].
    slot_ms: float = 10.0
    #: Per-channel sampling frequency [Hz]; None derives it (streaming:
    #: fill the payload once per cycle; rpeak: the fixed 200 Hz).
    sampling_hz: Optional[float] = None
    #: Fixed streaming payload per cycle [bytes].
    payload_bytes: int = 18
    heart_rate_bpm: float = 75.0
    #: Peak-to-peak ECG measurement noise [mV] at the ASIC input.
    ecg_noise_mv: float = 0.0
    measure_s: float = 60.0
    warmup_cycles: int = 3
    join_protocol: bool = False
    seed: int = 0
    #: Crystal tolerance magnitude [ppm]; each node draws its skew
    #: uniformly in [-ppm, +ppm] (0 = ideal clocks).
    clock_skew_ppm: float = 0.0
    calibration: ModelCalibration = field(
        default_factory=lambda: DEFAULT_CALIBRATION)
    #: Optional override of the per-MAC default sync policy.
    sync_policy_factory: Optional[
        Callable[[ModelCalibration], SyncPolicy]] = None
    topology: Optional[Topology] = None
    loss_model: Optional[LossModel] = None
    #: Keep a trace of the last N records (None = no tracing).
    trace_capacity: Optional[int] = None
    #: Maximum simulated seconds to wait for all joins.
    join_deadline_s: float = 60.0
    #: Heterogeneous BAN: one spec per node, overriding ``app``/
    #: ``sampling_hz``/``payload_bytes`` (num_nodes must match).
    node_specs: Optional[Sequence[NodeSpec]] = None
    #: Absolute time of the first beacon [ms]; None = the MAC default.
    #: Multi-BAN studies stagger this to de-phase the networks.
    first_beacon_ms: Optional[float] = None
    #: Extension: idle gaps at least this long are spent in the deep
    #: (LPM3-class) MCU mode instead of LPM0.  None (default) keeps the
    #: paper's validated LPM0-only behaviour.
    deep_sleep_threshold_ms: Optional[float] = None
    #: Deterministic fault schedule (:mod:`repro.faults`); None keeps
    #: the scenario byte-identical to a build predating fault support.
    faults: Optional[FaultPlan] = None
    #: MAC degradation behaviour under faults (widened beacon windows,
    #: duty-cycled reacquisition scans, SSR backoff).  None (default)
    #: keeps the paper's plain missed-beacon machinery.
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self) -> None:
        if self.mac not in MACS:
            raise ValueError(f"mac must be one of {MACS}, got {self.mac!r}")
        if self.app not in APPS:
            raise ValueError(f"app must be one of {APPS}, got {self.app!r}")
        if self.node_specs is not None:
            if not self.node_specs:
                raise ValueError("node_specs must not be empty")
            # Heterogeneous mode: the node count follows the specs.
            self.num_nodes = len(self.node_specs)
        if self.num_nodes < 1:
            raise ValueError(f"need >= 1 node: {self.num_nodes}")
        if self.measure_s <= 0:
            raise ValueError(f"measure_s must be positive: {self.measure_s}")
        if self.mac == "aloha" and self.join_protocol:
            raise ValueError(
                "ALOHA has no join protocol (nodes never synchronise); "
                "drop join_protocol")
        if self.mac == "csma" and self.join_protocol:
            raise ValueError(
                "CSMA/CA has no join protocol (nodes contend, never "
                "synchronise); drop join_protocol")

    # ------------------------------------------------------------------
    @property
    def cycle_ticks(self) -> int:
        """Steady-state TDMA cycle length in ticks."""
        if self.mac in ("static", "aloha", "csma"):
            return milliseconds(self.cycle_ms)
        return milliseconds(self.slot_ms) * (self.num_nodes + 1)

    @property
    def effective_num_slots(self) -> int:
        """Static slot capacity (defaults to the node count)."""
        return self.num_slots if self.num_slots is not None \
            else self.num_nodes

    def derived_sampling_hz(self) -> float:
        """The per-channel sampling frequency actually used."""
        if self.sampling_hz is not None:
            return self.sampling_hz
        if self.app in ("rpeak", "adaptive"):
            return RPEAK_SAMPLING_HZ
        if self.app == "eeg_streaming":
            return DEFAULT_EEG_SAMPLING_HZ
        # Streaming: exactly one full payload of codes per TDMA cycle
        # ("the sampling frequency is set accordingly to the TDMA cycle,
        #  so that a packet of 18 bytes is sent every cycle").
        cycle_s = self.cycle_ticks / seconds(1.0)
        codes_per_cycle = codes_per_payload(self.payload_bytes)
        return codes_per_cycle / 2.0 / cycle_s  # two channels


class BanScenario:
    """A built, runnable BAN.

    Args:
        config: the scenario description.
        sim: optional shared simulator — multi-BAN studies place several
            scenarios on one kernel/channel (see
            :class:`~repro.net.multi.MultiBanScenario`).  Must be given
            together with ``channel``.
        channel: optional shared medium.
        prefix: node-id prefix (e.g. ``"ban1."``) so several BANs can
            coexist with unique addresses.
        trace: optional recorder to install instead of the config-built
            one (e.g. a sink-fanning
            :class:`~repro.obs.sinks.SinkTraceRecorder`); ignored when
            ``sim`` is given (the shared kernel's recorder wins).
    """

    def __init__(self, config: BanScenarioConfig,
                 sim: Optional[Simulator] = None,
                 channel: Optional[Channel] = None,
                 prefix: str = "",
                 trace: Optional[TraceRecorder] = None) -> None:
        if (sim is None) != (channel is None):
            raise ValueError("pass sim and channel together, or neither")
        self.config = config
        self.prefix = prefix
        if sim is None:
            if trace is None:
                trace = (TraceRecorder(capacity=config.trace_capacity)
                         if config.trace_capacity else None)
            self.trace = trace
            self.sim = Simulator(seed=config.seed, trace=self.trace)
            self.channel = Channel(self.sim, topology=config.topology,
                                   loss_model=config.loss_model,
                                   trace=self.trace)
        else:
            self.sim = sim
            self.channel = channel
            self.trace = sim.trace
        self.base_station = BaseStation(
            self.sim, self.channel, config.calibration,
            address=f"{prefix}base_station", trace=self.trace)
        self.nodes: List[SensorNode] = []
        self.ecg_sources: Dict[str, SyntheticEcg] = {}
        #: Armed fault injector (None when the config has no faults).
        self.fault_injector: Optional[FaultInjector] = None
        #: Causal-span tracer, installed by
        #: :func:`repro.obs.spans.attach_span_tracer`; reset_all drops
        #: its warm-up spans alongside the ledgers.
        self.span_tracer: Optional["SpanTracer"] = None
        self._build()
        if config.faults:
            self.fault_injector = FaultInjector(self, config.faults)
            self.fault_injector.arm()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        config = self.config
        cal = config.calibration
        first_beacon = (milliseconds(config.first_beacon_ms)
                        if config.first_beacon_ms is not None
                        else milliseconds(10.0))
        if config.mac == "aloha":
            mac_config = AlohaConfig(
                poll_interval_ticks=milliseconds(config.cycle_ms))
            bs_mac = AlohaBaseMac(
                self.sim, self.base_station.radio,
                self.base_station.scheduler, cal, mac_config,
                trace=self.trace)
        elif config.mac == "csma":
            mac_config = CsmaConfig(
                poll_interval_ticks=milliseconds(config.cycle_ms))
            bs_mac = CsmaBaseMac(
                self.sim, self.base_station.radio,
                self.base_station.scheduler, cal, mac_config,
                trace=self.trace)
        elif config.mac == "static":
            mac_config = StaticTdmaConfig(
                cycle_ticks=milliseconds(config.cycle_ms),
                num_slots=config.effective_num_slots,
                first_beacon_ticks=first_beacon,
                base_station=self.base_station.address)
            bs_mac = StaticTdmaBaseMac(
                self.sim, self.base_station.radio,
                self.base_station.scheduler, cal, mac_config,
                trace=self.trace)
        else:
            mac_config = DynamicTdmaConfig(
                slot_ticks=milliseconds(config.slot_ms),
                first_beacon_ticks=first_beacon,
                base_station=self.base_station.address,
                initial_assigned=(0 if config.join_protocol
                                  else config.num_nodes))
            bs_mac = DynamicTdmaBaseMac(
                self.sim, self.base_station.radio,
                self.base_station.scheduler, cal, mac_config,
                trace=self.trace)
        self.base_station.install_mac(bs_mac)

        sampling_hz = config.derived_sampling_hz()
        for index in range(1, config.num_nodes + 1):
            node_id = f"{self.prefix}node{index}"
            node = SensorNode(self.sim, self.channel, cal, node_id,
                              trace=self.trace)
            skew = self._skew_for(node_id)
            preassigned = None if config.join_protocol else index
            if config.mac == "aloha":
                mac = AlohaNodeMac(
                    self.sim, node.radio, node.scheduler, cal,
                    mac_config, trace=self.trace)
            elif config.mac == "csma":
                mac = CsmaNodeMac(
                    self.sim, node.radio, node.scheduler, cal,
                    mac_config, recovery=config.recovery,
                    trace=self.trace)
            elif config.mac == "static":
                mac = StaticTdmaNodeMac(
                    self.sim, node.radio, node.scheduler, cal, mac_config,
                    sync_policy=self._sync_policy(),
                    preassigned_slot=preassigned,
                    clock_skew_ppm=skew,
                    recovery=config.recovery, trace=self.trace)
                if preassigned is not None:
                    bs_mac.schedule.assign(preassigned, node_id)
            else:
                mac = DynamicTdmaNodeMac(
                    self.sim, node.radio, node.scheduler, cal, mac_config,
                    sync_policy=self._sync_policy(),
                    preassigned_slot=preassigned,
                    clock_skew_ppm=skew,
                    recovery=config.recovery, trace=self.trace)
                if preassigned is not None:
                    bs_mac.schedule.assign(preassigned, node_id)
            node.install_mac(mac)
            spec = (config.node_specs[index - 1]
                    if config.node_specs is not None else None)
            self._attach_signals(node, index, spec)
            app = self._build_app(node, mac, sampling_hz, spec)
            node.install_app(app)
            if config.deep_sleep_threshold_ms is not None:
                self._install_deep_sleep(node, mac, app)
            self.nodes.append(node)

    def _install_deep_sleep(self, node: SensorNode, mac: Any,
                            app: "SamplingApplication") -> None:
        from ..tinyos.power import ThresholdDeepSleep

        def provider() -> Optional[int]:
            hints = [app.next_wake_hint()]
            mac_hint = getattr(mac, "next_wake_hint", None)
            if mac_hint is not None:
                hints.append(mac_hint())
            known = [h for h in hints if h is not None]
            return min(known) if known else None

        node.scheduler.power_policy = ThresholdDeepSleep(
            milliseconds(self.config.deep_sleep_threshold_ms))
        node.scheduler.wake_hint_provider = provider

    def _sync_policy(self) -> Optional[SyncPolicy]:
        factory = self.config.sync_policy_factory
        if factory is None:
            return None  # the MAC variant's calibrated default
        return factory(self.config.calibration)

    def _skew_for(self, node_id: str) -> float:
        magnitude = self.config.clock_skew_ppm
        if magnitude == 0.0:
            return 0.0
        stream = self.sim.rng.stream(f"{node_id}.skew")
        return stream.uniform(-magnitude, magnitude)

    def _attach_signals(self, node: SensorNode, index: int,
                        spec: Optional[NodeSpec]) -> None:
        config = self.config
        app = spec.app if spec is not None else config.app
        channels = tuple(spec.channels) if spec is not None else (0, 1)
        if app == "eeg_streaming":
            # One independent EEG waveform per channel, scaled from
            # microvolts into the ADC range by the ASIC gain stage.
            for channel in channels:
                eeg = SyntheticEeg(
                    seed=config.seed * 10_000 + 100 * index + channel)
                node.asic.connect_source(
                    channel, ScaledSource(eeg, gain=0.02, offset=1.25))
            return
        # ECG-based applications: stagger beat phases across nodes so
        # transmissions de-correlate.
        ecg = SyntheticEcg(heart_rate_bpm=config.heart_rate_bpm,
                           first_beat_s=0.35 + 0.11 * index)
        self.ecg_sources[node.node_id] = ecg
        sources = [ecg]
        if config.ecg_noise_mv > 0.0:
            sources.append(HashNoiseSource(config.ecg_noise_mv,
                                           seed=config.seed * 1000 + index))
        mixed = MixSource(sources) if len(sources) > 1 else ecg
        # ASIC gain stage: lead I full gain, lead II reduced, both
        # centred in the ADC's 0..2.5 V range.
        gains = (0.8, 0.5)
        for position, channel in enumerate(channels):
            gain = gains[position % len(gains)]
            node.asic.connect_source(
                channel, ScaledSource(mixed, gain=gain, offset=1.25))

    def _spec_sampling_hz(self, spec: NodeSpec) -> float:
        """Per-channel rate for one heterogeneous node."""
        if spec.sampling_hz is not None:
            return spec.sampling_hz
        if spec.app in ("rpeak", "adaptive"):
            return RPEAK_SAMPLING_HZ
        if spec.app == "eeg_streaming":
            return DEFAULT_EEG_SAMPLING_HZ
        cycle_s = self.config.cycle_ticks / seconds(1.0)
        codes = codes_per_payload(spec.payload_bytes)
        return codes / len(spec.channels) / cycle_s

    def _build_app(self, node: SensorNode, mac: Any, sampling_hz: float,
                   spec: Optional[NodeSpec]) -> "SamplingApplication":
        config = self.config
        cal = config.calibration
        app = spec.app if spec is not None else config.app
        channels = tuple(spec.channels) if spec is not None else (0, 1)
        rate = self._spec_sampling_hz(spec) if spec is not None \
            else sampling_hz
        payload = spec.payload_bytes if spec is not None \
            else config.payload_bytes
        if app == "ecg_streaming":
            return EcgStreamingApp(
                self.sim, node.scheduler, node.asic, node.adc, mac, cal,
                channels=channels, sampling_hz=rate,
                payload_bytes=payload,
                name=f"{node.node_id}.app", trace=self.trace)
        if app == "eeg_streaming":
            return EegStreamingApp(
                self.sim, node.scheduler, node.asic, node.adc, mac, cal,
                channels=channels, sampling_hz=rate,
                transmit_channels=(spec.transmit_channels
                                   if spec is not None else None),
                decimation=spec.decimation if spec is not None else 4,
                payload_bytes=payload,
                name=f"{node.node_id}.app", trace=self.trace)
        if app == "adaptive":
            return AdaptiveCardiacApp(
                self.sim, node.scheduler, node.asic, node.adc, mac, cal,
                channels=channels, sampling_hz=rate,
                payload_bytes=payload,
                name=f"{node.node_id}.app", trace=self.trace)
        return RpeakApp(
            self.sim, node.scheduler, node.asic, node.adc, mac, cal,
            channels=channels, sampling_hz=rate,
            name=f"{node.node_id}.app", trace=self.trace)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start_all(self) -> None:
        """Start the base station and every node (idempotence guarded
        by the component model)."""
        self.base_station.start()
        for node in self.nodes:
            node.start()

    def reset_all(self) -> None:
        """Zero every energy ledger/counter (measurement-window start)."""
        self.base_station.reset_measurement()
        for node in self.nodes:
            node.reset_measurement()
        if self.span_tracer is not None:
            self.span_tracer.reset()

    def collect(self, horizon_s: Optional[float] = None
                ) -> NetworkEnergyResult:
        """Freeze results over ``horizon_s`` (default: configured)."""
        horizon = horizon_s if horizon_s is not None \
            else self.config.measure_s
        results = {node.node_id: node.collect_result(horizon)
                   for node in self.nodes}
        bs_result = self.base_station.collect_result(horizon)
        return NetworkEnergyResult(horizon_s=horizon,
                                   nodes=results,
                                   base_station=bs_result)

    def run(self) -> NetworkEnergyResult:
        """Warm up, measure for ``measure_s``, and collect the results."""
        config = self.config
        self.start_all()
        if config.join_protocol:
            self._wait_for_joins()
        measure_start = self._measurement_start()
        self.sim.run_until(measure_start)
        self.reset_all()
        self.sim.run_until(measure_start + seconds(config.measure_s))
        return self.collect()

    def _wait_for_joins(self) -> None:
        config = self.config
        deadline = self.sim.now + seconds(config.join_deadline_s)
        step = milliseconds(100)
        while self.sim.now < deadline:
            if all(node.mac.is_synced for node in self.nodes):
                return
            self.sim.run_until(min(self.sim.now + step, deadline))
        if not all(node.mac.is_synced for node in self.nodes):
            unsynced = [node.node_id for node in self.nodes
                        if not node.mac.is_synced]
            raise RuntimeError(
                f"nodes failed to join within {config.join_deadline_s} s: "
                f"{unsynced}")

    def _measurement_start(self) -> int:
        """A mid-sleep instant ``warmup_cycles`` cycles into steady state."""
        config = self.config
        bs_mac = self.base_station.mac
        cycle = bs_mac.current_cycle_ticks()
        next_beacon = bs_mac.next_beacon_ticks
        target_beacon = next_beacon + config.warmup_cycles * cycle
        guard = self._max_lead(cycle) + milliseconds(1)
        start = target_beacon - guard
        if start <= self.sim.now:
            start = target_beacon + cycle - guard
        return start

    def _max_lead(self, cycle: int) -> int:
        leads = [node.mac.sync_policy.lead_ticks(cycle, cycle)
                 for node in self.nodes
                 if hasattr(node.mac, "sync_policy")]
        return max(leads) if leads else 0


def run_scenario(**kwargs: Any) -> NetworkEnergyResult:
    """One-call convenience: build a scenario from keyword arguments
    (see :class:`BanScenarioConfig`) and run it."""
    return BanScenario(BanScenarioConfig(**kwargs)).run()


__all__ = ["BanScenarioConfig", "BanScenario", "NodeSpec",
           "run_scenario", "MACS", "APPS"]
