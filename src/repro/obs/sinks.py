"""Pluggable structured trace sinks.

The in-memory :class:`~repro.sim.trace.TraceRecorder` keeps trace
records as Python objects — perfect for tests, useless for watching a
long run or post-processing outside the process.  This module adds
*sinks*: destinations a record is pushed to the moment it is recorded.

* :class:`JsonlTraceSink` streams records as JSON Lines — one
  self-describing object per line, parseable by anything.
* :class:`RingTraceSink` keeps the most recent N records in a
  :class:`collections.deque` — a flight recorder for post-mortems.
* :class:`SinkTraceRecorder` is the adapter that keeps the existing
  ``TraceRecorder`` API working: it *is* a ``TraceRecorder`` (every
  component that takes ``trace=`` accepts it unchanged, ``filter`` /
  iteration / ``total_recorded`` behave identically) and additionally
  fans each record out to the attached sinks.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, IO, Iterable, Iterator, List, Optional, Tuple

from ..sim.trace import TraceRecorder

#: A sink-level record: the four TraceRecorder.record arguments.
SinkRecord = Tuple[int, str, str, str]


class TraceSink:
    """Interface every sink implements.  Base methods are no-ops so
    subclasses override only what they need."""

    def emit(self, time: int, source: str, kind: str,
             detail: str) -> None:
        """Receive one trace record."""

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class JsonlTraceSink(TraceSink):
    """Streams records to a file as JSON Lines.

    Each line is ``{"t": <ticks>, "source": ..., "kind": ...,
    "detail": ...}``.  The file handle is opened eagerly so a bad path
    fails fast, and buffered writes keep the per-record cost at one
    ``json.dumps`` plus a buffered ``write``.

    Args:
        path: output file path (overwritten).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w")
        self.emitted = 0

    def emit(self, time: int, source: str, kind: str,
             detail: str) -> None:
        if self._handle is None:
            raise ValueError(f"sink for {self.path!r} is closed")
        self._handle.write(json.dumps(
            {"t": time, "source": source, "kind": kind,
             "detail": detail}) + "\n")
        self.emitted += 1

    def close(self) -> None:
        handle = self._handle
        if handle is None:
            return
        self._handle = None
        try:
            handle.flush()
        finally:
            handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        # Runs on exceptional unwind too: everything emitted before the
        # exception is flushed to disk, so post-mortems see the trace
        # up to the failure point.
        self.close()


def read_jsonl_trace(path: str) -> List[dict]:
    """Parse a :class:`JsonlTraceSink` file back into record dicts.

    A truncated *final* line — the signature of an interrupted writer
    (crash, kill, full disk) — is tolerated: instead of raising, the
    returned list ends with a ``{"warning": "truncated final line
    skipped", "raw": <text>}`` entry.  A malformed line with valid
    records after it still raises: that is corruption, not truncation.
    """
    records: List[dict] = []
    with open(path) as handle:
        lines = handle.read().split("\n")
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError:
            if any(rest.strip() for rest in lines[index + 1:]):
                raise
            records.append({"warning": "truncated final line skipped",
                            "raw": stripped})
            break
    return records


class RingTraceSink(TraceSink):
    """Keeps the most recent ``capacity`` records in memory (O(1) drop).

    Args:
        capacity: ring size; older records are evicted silently (the
            ``emitted`` counter keeps the true total).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[SinkRecord] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, time: int, source: str, kind: str,
             detail: str) -> None:
        self._ring.append((time, source, kind, detail))
        self.emitted += 1

    @property
    def records(self) -> List[SinkRecord]:
        """The retained records, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[SinkRecord]:
        return iter(self._ring)


class SinkTraceRecorder(TraceRecorder):
    """A :class:`TraceRecorder` that also pushes records to sinks.

    Drop-in compatible: pass it anywhere a ``TraceRecorder`` goes (the
    kernel, scenarios, components) and the in-memory API — ``filter``,
    iteration, ``total_recorded``, ``capacity`` eviction — behaves
    exactly as before; each record is *additionally* fanned out to
    every attached sink at record time.

    Args:
        sinks: the fan-out destinations.
        capacity: in-memory bound (as for ``TraceRecorder``); pass a
            small value when the sinks are the real consumers and the
            in-memory view is only for debugging.
    """

    def __init__(self, sinks: Iterable[TraceSink],
                 capacity: Optional[int] = None) -> None:
        super().__init__(capacity=capacity)
        self.sinks: List[TraceSink] = list(sinks)

    def record(self, time: int, source: str, kind: str,
               detail: str) -> None:
        super().record(time, source, kind, detail)
        for sink in self.sinks:
            sink.emit(time, source, kind, detail)

    def close(self) -> None:
        """Close every attached sink."""
        for sink in self.sinks:
            sink.close()


__all__ = ["TraceSink", "JsonlTraceSink", "RingTraceSink",
           "SinkTraceRecorder", "read_jsonl_trace", "SinkRecord"]
