"""Seeded-bug fixture: a power-state machine that violates its spec.

The declared machine is off -> idle -> tx -> idle -> off.  The code
additionally jumps off -> tx directly (SM001), never encodes the
declared idle -> off edge (SM002), and books energy for a ``ghost``
state no transition can reach (SM003).
"""

from repro.core.ledger import PowerStateLedger
from repro.core.states import PowerState, PowerStateTable, TransitionSpec
from repro.sim.kernel import Simulator

FIXTURE_TRANSITIONS = TransitionSpec(
    component="heater",
    module="hw/illegal_transition.py",
    class_name="Heater",
    initial="off",
    states=("off", "idle", "tx", "ghost"),
    transitions=(
        ("off", "idle"),
        ("idle", "tx"),
        ("tx", "idle"),
        ("idle", "off"),
    ),
)


class Heater:
    """Minimal component with a spec-declared power-state machine."""

    def __init__(self, sim: Simulator) -> None:
        table = PowerStateTable([
            PowerState("off", 0.0),
            PowerState("idle", 0.001),
            PowerState("tx", 0.010),
            PowerState("ghost", 1.0),
        ])
        self.ledger = PowerStateLedger(sim, "heater", table, 3.0,
                                       initial_state="off")

    def warm_up(self) -> None:
        if self.ledger.state == "off":
            self.ledger.transition("idle")

    def burst(self) -> None:
        if self.ledger.state == "idle":
            self.ledger.transition("tx")
        elif self.ledger.state == "off":
            # BUG(SM001): jumps straight from off to tx.
            self.ledger.transition("tx")

    def cool(self) -> None:
        if self.ledger.state == "tx":
            self.ledger.transition("idle")
