"""Radio energy attribution: the Section 4.2 loss taxonomy.

The paper's radio model explicitly accounts four sources of wasted
energy — collisions, idle listening, overhearing and control-packet
overhead — on top of useful transmission/reception.  This module makes
that attribution a first-class output: every joule the radio draws is
assigned to exactly one :class:`RadioEnergyCategory`.

The :class:`LossAccountant` is fed by the radio model:

* each completed TX books its energy as data/control (or collision, if
  the channel corrupted it),
* each frame that occupied the receiver books its airtime energy as
  data/control/overheard/collision,
* whatever RX-state energy remains unattributed at report time is, by
  definition, **idle listening** (the receiver was on with nothing
  usefully arriving).

The test suite checks the invariant ``sum(categories) == ledger total``.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict


class RadioEnergyCategory(enum.Enum):
    """Where one joule of radio energy went."""

    #: Transmitting application data that arrived intact.
    DATA_TX = "data_tx"
    #: Receiving application data addressed to this node, intact.
    DATA_RX = "data_rx"
    #: Transmitting MAC control traffic (beacons, slot requests, grants).
    CONTROL_TX = "control_tx"
    #: Receiving MAC control traffic addressed to (or broadcast at) us.
    CONTROL_RX = "control_rx"
    #: Receiving frames addressed to another node (dropped by the
    #: nRF2401 hardware address filter, but the RX energy is spent).
    OVERHEARING = "overhearing"
    #: TX or RX time spent on frames corrupted by a collision.
    COLLISION = "collision"
    #: Receiver on with no frame usefully arriving (guard windows etc.).
    IDLE_LISTENING = "idle_listening"


#: Categories that represent waste in the paper's sense (Section 4.2).
WASTE_CATEGORIES = (
    RadioEnergyCategory.CONTROL_TX,
    RadioEnergyCategory.CONTROL_RX,
    RadioEnergyCategory.OVERHEARING,
    RadioEnergyCategory.COLLISION,
    RadioEnergyCategory.IDLE_LISTENING,
)


@dataclass(frozen=True)
class LossBreakdown:
    """Immutable snapshot of a node's radio-energy attribution."""

    energy_j: Dict[RadioEnergyCategory, float]
    frames: Dict[RadioEnergyCategory, int]

    @property
    def total_j(self) -> float:
        """Sum of all categories (should equal the radio ledger total)."""
        return sum(self.energy_j.values())

    @property
    def waste_j(self) -> float:
        """Energy in the paper's waste categories."""
        return sum(self.energy_j.get(c, 0.0) for c in WASTE_CATEGORIES)

    @property
    def useful_j(self) -> float:
        """Energy spent on intact application data TX/RX."""
        return (self.energy_j.get(RadioEnergyCategory.DATA_TX, 0.0)
                + self.energy_j.get(RadioEnergyCategory.DATA_RX, 0.0))

    def fraction(self, category: RadioEnergyCategory) -> float:
        """Share of total radio energy in ``category`` (0 when total is 0)."""
        total = self.total_j
        if total <= 0:
            return 0.0
        return self.energy_j.get(category, 0.0) / total


class LossAccountant:
    """Mutable per-node attribution counters, filled by the radio model."""

    def __init__(self) -> None:
        self._energy: Dict[RadioEnergyCategory, float] = defaultdict(float)
        self._frames: Dict[RadioEnergyCategory, int] = defaultdict(int)
        self._tx_side_collision_j = 0.0

    def book(self, category: RadioEnergyCategory, energy_j: float,
             frames: int = 1) -> None:
        """Attribute ``energy_j`` joules (and ``frames`` frames) to a cause."""
        if energy_j < 0:
            raise ValueError(f"negative energy: {energy_j}")
        self._energy[category] += energy_j
        self._frames[category] += frames

    def attributed_rx_j(self) -> float:
        """RX-side energy already attributed to frames.

        Used to derive idle listening as the residual against the ledger's
        total RX-state energy.
        """
        rx_categories = (RadioEnergyCategory.DATA_RX,
                         RadioEnergyCategory.CONTROL_RX,
                         RadioEnergyCategory.OVERHEARING,
                         RadioEnergyCategory.COLLISION)
        # Collision energy can be TX-side too; the radio books RX-side
        # collision energy here and TX-side separately, so the residual
        # computation only subtracts what was booked from RX state.
        return sum(self._energy.get(c, 0.0) for c in rx_categories) \
            - self._tx_side_collision_j

    def book_collision_tx(self, energy_j: float, frames: int = 1) -> None:
        """Attribute a corrupted *transmission* (kept separable so the
        idle-listening residual only considers RX-side bookings)."""
        self.book(RadioEnergyCategory.COLLISION, energy_j, frames)
        self._tx_side_collision_j += energy_j

    def finalize(self, total_rx_state_j: float) -> None:
        """Assign the unattributed RX-state residual to idle listening.

        Args:
            total_rx_state_j: the radio ledger's total energy in RX state.
        """
        residual = total_rx_state_j - self.attributed_rx_j()
        # Tolerate tiny negative residuals from float rounding.
        if residual < -1e-9:
            raise ValueError(
                f"attributed RX energy exceeds RX-state total by "
                f"{-residual:.3e} J; attribution is inconsistent")
        self._energy[RadioEnergyCategory.IDLE_LISTENING] += max(0.0, residual)

    def snapshot(self) -> LossBreakdown:
        """Freeze the current counters into a :class:`LossBreakdown`."""
        return LossBreakdown(energy_j=dict(self._energy),
                             frames=dict(self._frames))


__all__ = [
    "RadioEnergyCategory",
    "WASTE_CATEGORIES",
    "LossBreakdown",
    "LossAccountant",
]
