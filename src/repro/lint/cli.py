"""``python -m repro.lint`` / ``repro-ban lint`` command line.

Exit codes: 0 — clean (no unsuppressed findings); 1 — findings; 2 —
usage/configuration error.  ``--format json`` emits the CI-artifact
document described in :mod:`repro.lint.report`; ``--output`` writes it
to a file while the gate summary still goes to stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .config import ConfigError, load_config
from .engine import lint_paths
from .report import render_json, render_text
from .rules import iter_rules


def build_parser(prog: str = "repro-lint") -> argparse.ArgumentParser:
    """The argument parser (shared by ``repro-ban lint``)."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Determinism & simulation-safety linter for the "
                    "repro package (rule catalog: "
                    "docs/static_analysis.md).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="write the report to PATH instead of "
                             "stdout (a one-line gate summary still "
                             "prints)")
    parser.add_argument("--pyproject", metavar="PATH", default=None,
                        help="explicit pyproject.toml carrying "
                             "[tool.repro-lint] (default: nearest)")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "(overrides configuration)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include waived findings in text output")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="enable incremental caching: replay "
                             "content-unchanged files from "
                             "DIR/lint-cache.json")
    parser.add_argument("--changed-only", action="store_true",
                        help="with --cache-dir, report findings only "
                             "for files whose content changed since "
                             "the cached run")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan the tree analyses across N worker "
                             "processes (findings identical to "
                             "sequential; default: 1)")
    parser.add_argument("--sarif", metavar="PATH", default=None,
                        help="additionally write a SARIF 2.1.0 "
                             "report to PATH (for GitHub code "
                             "scanning upload)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in iter_rules():
        lines.append(f"{rule.code}  {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns 0 clean, 1 findings, 2 usage error."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    paths: List[Path] = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        sys.stderr.write("error: no such path: %s\n"
                         % ", ".join(missing))
        return 2
    try:
        config = load_config(
            paths,
            Path(args.pyproject) if args.pyproject else None)
    except ConfigError as exc:
        sys.stderr.write(f"configuration error: {exc}\n")
        return 2
    if args.select:
        from dataclasses import replace
        codes = tuple(code.strip() for code in args.select.split(",")
                      if code.strip())
        config = replace(config, select=codes)
    cache = None
    if args.cache_dir:
        from .cache import LintCache
        cache = LintCache(Path(args.cache_dir), config)
    elif args.changed_only:
        sys.stderr.write("error: --changed-only requires --cache-dir\n")
        return 2
    if args.jobs < 1:
        sys.stderr.write("error: --jobs must be >= 1\n")
        return 2
    report = lint_paths(paths, config, cache=cache,
                        changed_only=args.changed_only,
                        jobs=args.jobs)
    if args.sarif:
        from .sarif import render_sarif
        Path(args.sarif).write_text(render_sarif(report),
                                    encoding="utf-8")
        sys.stdout.write(f"wrote {args.sarif}\n")
    rendered = (render_json(report) if args.format == "json"
                else render_text(report, args.show_suppressed))
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
        summary = render_text(report).splitlines()[-1]
        sys.stdout.write(f"{summary}  (report: {args.output})\n")
    else:
        sys.stdout.write(rendered)
    return 0 if report.ok else 1


__all__ = ["build_parser", "main"]
