"""Deterministic fault injection for BAN scenarios.

The paper's energy model exists to account for the ugly cases —
collisions, idle listening, overhearing, lost beacons — but a
reproduction also needs the *node-level* ugly cases: crashes, radio
lockups, clock glitches, dying batteries.  This package provides:

* :mod:`repro.faults.spec` — frozen, value-typed fault descriptions
  (:class:`NodeCrash`, :class:`RadioLockup`, :class:`BeaconLossBurst`,
  :class:`ClockStep`, :class:`BatteryBrownout`, :class:`RandomFaults`)
  collected into a :class:`FaultPlan`.  Being plain dataclasses, plans
  ride along in :class:`~repro.net.scenario.BanScenarioConfig` and
  participate in the result-cache fingerprint.
* :mod:`repro.faults.injector` — :class:`FaultInjector` turns a plan
  into simulation events on the scenario's kernel, so fault timing is
  exactly as reproducible as everything else: same seed, same schedule,
  same ledgers.

Faults are injected *beneath* the protocol (stack stop/start, radio
receive-path flags, MAC clock bookkeeping), so the MACs recover — or
fail to — through their ordinary machinery, which is what the
:class:`~repro.mac.recovery.RecoveryConfig` degradation behaviour is
measured against.  A config with ``faults=None`` builds a byte-for-byte
identical scenario to one predating this package.
"""

from .injector import FaultCounters, FaultInjector
from .spec import (
    BatteryBrownout,
    BeaconLossBurst,
    ClockStep,
    FaultPlan,
    NodeCrash,
    RadioLockup,
    RandomFaults,
    parse_fault_spec,
    random_fault_plan,
)

__all__ = [
    "BatteryBrownout",
    "BeaconLossBurst",
    "ClockStep",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "RadioLockup",
    "RandomFaults",
    "parse_fault_spec",
    "random_fault_plan",
]
